"""Tests for units, timebase, blocks, registers, noise and analysis helpers."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import (
    BitField,
    Block,
    Cascade,
    ConfigurationError,
    Gain,
    NoiseSource,
    Passthrough,
    Register,
    RegisterError,
    RegisterFile,
    Saturator,
    SimulationClock,
    Timebase,
    ac_rms,
    amplitude_spectral_density,
    band_average_density,
    crossing_time,
    envelope_amplitude,
    linear_fit,
    nonlinearity_percent_fs,
    rms,
    settling_time,
    thermal_voltage_noise_density,
    three_db_bandwidth,
    tone_amplitude_phase,
    units,
    white_noise,
)


class TestUnits:
    def test_deg_rad_round_trip(self):
        assert units.rad_to_deg(units.deg_to_rad(123.0)) == pytest.approx(123.0)

    def test_dps_rps(self):
        assert units.dps_to_rps(180.0) == pytest.approx(math.pi)
        assert units.rps_to_dps(math.pi) == pytest.approx(180.0)

    def test_temperature_round_trip(self):
        assert units.kelvin_to_celsius(units.celsius_to_kelvin(25.0)) == pytest.approx(25.0)
        assert units.celsius_to_kelvin(0.0) == pytest.approx(273.15)

    def test_db_conversions(self):
        assert units.db_to_linear(20.0) == pytest.approx(10.0)
        assert units.linear_to_db(10.0) == pytest.approx(20.0)
        assert units.power_db_to_linear(10.0) == pytest.approx(10.0)
        assert units.power_linear_to_db(100.0) == pytest.approx(20.0)

    def test_db_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.linear_to_db(0.0)
        with pytest.raises(ValueError):
            units.power_linear_to_db(-1.0)

    def test_seconds_samples(self):
        assert units.seconds_to_samples(1.0, 1000.0) == 1000
        assert units.samples_to_seconds(500, 1000.0) == pytest.approx(0.5)

    def test_seconds_to_samples_rejects_bad_args(self):
        with pytest.raises(ValueError):
            units.seconds_to_samples(1.0, 0.0)
        with pytest.raises(ValueError):
            units.seconds_to_samples(-1.0, 100.0)

    def test_full_scale_fraction(self):
        assert units.full_scale_fraction(1.0, 4.0) == pytest.approx(0.25)
        with pytest.raises(ValueError):
            units.full_scale_fraction(1.0, 0.0)

    def test_ratiometric_output(self):
        v = units.volts_per_dps_to_volts(0.005, 100.0, null_v=2.5)
        assert v == pytest.approx(3.0)


class TestTimebase:
    def test_dt_and_nyquist(self):
        tb = Timebase(1000.0)
        assert tb.dt == pytest.approx(0.001)
        assert tb.nyquist_hz == pytest.approx(500.0)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ConfigurationError):
            Timebase(0.0)

    def test_n_samples_and_duration(self):
        tb = Timebase(48000.0)
        assert tb.n_samples(1.0) == 48000
        assert tb.duration(24000) == pytest.approx(0.5)

    def test_time_vector(self):
        tb = Timebase(10.0)
        t = tb.time_vector(5)
        assert np.allclose(t, [0.0, 0.1, 0.2, 0.3, 0.4])

    def test_decimated(self):
        tb = Timebase(1000.0).decimated(4)
        assert tb.sample_rate_hz == pytest.approx(250.0)

    def test_decimated_rejects_bad_factor(self):
        with pytest.raises(ConfigurationError):
            Timebase(1000.0).decimated(0)

    def test_phase_increment(self):
        tb = Timebase(1000.0)
        assert tb.phase_increment(250.0) == pytest.approx(math.pi / 2)

    def test_clock_tick_and_reset(self):
        clk = SimulationClock(Timebase(100.0))
        clk.tick(50)
        assert clk.sample_index == 50
        assert clk.now == pytest.approx(0.5)
        clk.reset()
        assert clk.now == 0.0

    def test_clock_rejects_negative_tick(self):
        clk = SimulationClock(Timebase(100.0))
        with pytest.raises(ConfigurationError):
            clk.tick(-1)


class TestBlocks:
    def test_passthrough(self):
        assert Passthrough().step(3.3) == 3.3

    def test_gain(self):
        assert Gain(2.0).step(1.5) == 3.0

    def test_saturator(self):
        sat = Saturator(-1.0, 1.0)
        assert sat.step(5.0) == 1.0
        assert sat.step(-5.0) == -1.0
        assert sat.step(0.5) == 0.5

    def test_saturator_rejects_inverted_limits(self):
        with pytest.raises(ValueError):
            Saturator(1.0, -1.0)

    def test_cascade(self):
        chain = Cascade([Gain(2.0), Gain(3.0), Saturator(-10, 10)])
        assert chain.step(1.0) == 6.0
        assert chain.step(10.0) == 10.0

    def test_process_streams_array(self):
        out = Gain(2.0).process(np.array([1.0, 2.0, 3.0]))
        assert np.allclose(out, [2.0, 4.0, 6.0])

    def test_block_repr_contains_name(self):
        assert "mygain" in repr(Gain(1.0, name="mygain"))


class TestRegisters:
    def test_field_extract_insert(self):
        f = BitField("mode", lsb=4, width=2)
        word = f.insert(0, 3)
        assert word == 0x30
        assert f.extract(word) == 3

    def test_field_rejects_oversized_value(self):
        f = BitField("mode", lsb=0, width=2)
        with pytest.raises(RegisterError):
            f.insert(0, 4)

    def test_field_rejects_bad_reset(self):
        with pytest.raises(RegisterError):
            BitField("x", lsb=0, width=1, reset=2)

    def test_register_read_write(self):
        reg = Register("ctrl", 0x10, width=16)
        reg.write(0xABCD)
        assert reg.read() == 0xABCD

    def test_register_masks_to_width(self):
        reg = Register("ctrl", 0x10, width=8)
        reg.write(0x1FF)
        assert reg.read() == 0xFF

    def test_read_only_register_ignores_writes(self):
        reg = Register("status", 0x11, access="ro", reset=0x5)
        reg.write(0xFF)
        assert reg.read() == 0x5
        reg.hw_write(0x7)
        assert reg.read() == 0x7

    def test_w1c_register(self):
        reg = Register("irq", 0x12, access="w1c")
        reg.hw_write(0b1010)
        reg.write(0b0010)
        assert reg.read() == 0b1000

    def test_register_fields(self):
        reg = Register("cfg", 0x13, width=16, fields=[
            BitField("gain", lsb=0, width=4, reset=2),
            BitField("enable", lsb=8, width=1, reset=1),
        ])
        assert reg.read_field("gain") == 2
        assert reg.read_field("enable") == 1
        reg.write_field("gain", 7)
        assert reg.read_field("gain") == 7
        assert reg.read_field("enable") == 1

    def test_register_rejects_overlapping_fields(self):
        with pytest.raises(RegisterError):
            Register("cfg", 0x13, fields=[
                BitField("a", lsb=0, width=4),
                BitField("b", lsb=3, width=2),
            ])

    def test_register_rejects_field_beyond_width(self):
        with pytest.raises(RegisterError):
            Register("cfg", 0x13, width=8, fields=[BitField("a", lsb=7, width=2)])

    def test_register_unknown_field(self):
        reg = Register("cfg", 0x13)
        with pytest.raises(RegisterError):
            reg.read_field("nope")

    def test_register_reset(self):
        reg = Register("cfg", 0x0, reset=0x42)
        reg.write(0x1)
        reg.reset()
        assert reg.read() == 0x42

    def test_register_file_name_and_address_access(self):
        rf = RegisterFile("dsp")
        rf.define("pll_status", 0x00, access="ro")
        rf.define("agc_gain", 0x02)
        rf.write("agc_gain", 0x33)
        assert rf.read("agc_gain") == 0x33
        assert rf.bus_read(0x02) == 0x33
        rf.bus_write(0x02, 0x44)
        assert rf.read("agc_gain") == 0x44

    def test_register_file_rejects_duplicates(self):
        rf = RegisterFile()
        rf.define("a", 0x0)
        with pytest.raises(RegisterError):
            rf.define("a", 0x2)
        with pytest.raises(RegisterError):
            rf.define("b", 0x0)

    def test_register_file_unknown_lookups(self):
        rf = RegisterFile()
        with pytest.raises(RegisterError):
            rf.read("missing")
        with pytest.raises(RegisterError):
            rf.bus_read(0x100)

    def test_register_file_write_callback(self):
        rf = RegisterFile()
        rf.define("ctrl", 0x0)
        seen = []
        rf.on_write("ctrl", seen.append)
        rf.write("ctrl", 5)
        rf.bus_write(0x0, 9)
        assert seen == [5, 9]

    def test_register_file_dump_and_map(self):
        rf = RegisterFile()
        rf.define("a", 0x4, reset=1)
        rf.define("b", 0x0, reset=2)
        dump = rf.dump()
        assert dump == {"a": 1, "b": 2}
        addresses = [addr for addr, _, _ in rf.address_map()]
        assert addresses == sorted(addresses)
        assert len(rf) == 2

    def test_register_file_reset(self):
        rf = RegisterFile()
        rf.define("a", 0x0, reset=7)
        rf.write("a", 0)
        rf.reset()
        assert rf.read("a") == 7


class TestNoise:
    def test_white_noise_density_matches_request(self):
        fs = 10000.0
        density = 0.01
        x = white_noise(200000, density, fs, rng=np.random.default_rng(1))
        measured = band_average_density(x, fs, (100.0, 4000.0))
        assert measured == pytest.approx(density, rel=0.15)

    def test_white_noise_zero_density(self):
        assert np.all(white_noise(100, 0.0, 1000.0) == 0.0)

    def test_white_noise_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            white_noise(-1, 0.1, 100.0)
        with pytest.raises(ConfigurationError):
            white_noise(10, -0.1, 100.0)
        with pytest.raises(ConfigurationError):
            white_noise(10, 0.1, 0.0)

    def test_noise_source_reproducible_with_seed(self):
        a = NoiseSource(white_density=1e-3, seed=42).generate(1000, 1000.0)
        b = NoiseSource(white_density=1e-3, seed=42).generate(1000, 1000.0)
        assert np.array_equal(a, b)

    def test_noise_source_reset_repeats_sequence(self):
        src = NoiseSource(white_density=1e-3, seed=7)
        first = src.generate(100, 1000.0)
        src.reset()
        second = src.generate(100, 1000.0)
        assert np.array_equal(first, second)

    def test_noise_source_sample_scalar(self):
        src = NoiseSource(white_density=1e-3, seed=3)
        value = src.sample(1000.0)
        assert isinstance(value, float)
        assert NoiseSource(white_density=0.0).sample(1000.0) == 0.0

    def test_thermal_noise_density_order_of_magnitude(self):
        # 1 kOhm at 25 C is about 4 nV/sqrt(Hz)
        density = thermal_voltage_noise_density(1000.0, 25.0)
        assert density == pytest.approx(4.07e-9, rel=0.05)

    def test_thermal_noise_rejects_negative_resistance(self):
        with pytest.raises(ConfigurationError):
            thermal_voltage_noise_density(-1.0)

    def test_rms_and_ac_rms(self):
        x = np.ones(100) * 2.0
        assert rms(x) == pytest.approx(2.0)
        assert ac_rms(x) == pytest.approx(0.0)
        with pytest.raises(ConfigurationError):
            rms(np.array([]))

    def test_asd_of_sine_peaks_at_tone(self):
        fs = 1000.0
        t = np.arange(8192) / fs
        x = np.sin(2 * np.pi * 100.0 * t)
        freqs, asd = amplitude_spectral_density(x, fs)
        peak_freq = freqs[np.argmax(asd)]
        assert peak_freq == pytest.approx(100.0, abs=5.0)

    def test_asd_rejects_tiny_records(self):
        with pytest.raises(ConfigurationError):
            amplitude_spectral_density(np.zeros(4), 100.0)

    def test_band_average_rejects_empty_band(self):
        x = np.random.default_rng(0).normal(size=4096)
        with pytest.raises(ConfigurationError):
            band_average_density(x, 1000.0, (400.0, 400.0000001))


class TestAnalysis:
    def test_linear_fit_recovers_line(self):
        x = np.linspace(-10, 10, 50)
        y = 3.0 * x + 1.5
        fit = linear_fit(x, y)
        assert fit.slope == pytest.approx(3.0)
        assert fit.offset == pytest.approx(1.5)
        assert fit.max_abs_residual == pytest.approx(0.0, abs=1e-9)

    def test_linear_fit_predict(self):
        fit = linear_fit(np.array([0.0, 1.0]), np.array([1.0, 3.0]))
        assert fit.predict(np.array([2.0]))[0] == pytest.approx(5.0)

    def test_linear_fit_rejects_mismatched(self):
        with pytest.raises(ConfigurationError):
            linear_fit(np.array([1.0, 2.0]), np.array([1.0]))

    def test_nonlinearity_zero_for_perfect_line(self):
        x = np.linspace(-300, 300, 31)
        y = 0.005 * x + 2.5
        assert nonlinearity_percent_fs(x, y) == pytest.approx(0.0, abs=1e-9)

    def test_nonlinearity_quadratic_bow(self):
        x = np.linspace(-1, 1, 101)
        y = x + 0.01 * x ** 2
        nl = nonlinearity_percent_fs(x, y)
        assert 0.0 < nl < 5.0

    def test_settling_time_step_response(self):
        t = np.linspace(0, 1, 1001)
        tau = 0.1
        y = 1.0 - np.exp(-t / tau)
        ts = settling_time(t, y, final_value=1.0, tolerance=0.02)
        assert ts == pytest.approx(tau * math.log(1 / 0.02), rel=0.05)

    def test_settling_time_already_settled(self):
        t = np.linspace(0, 1, 100)
        y = np.ones(100)
        assert settling_time(t, y) == pytest.approx(0.0)

    def test_envelope_amplitude_of_sine(self):
        fs = 10000.0
        t = np.arange(5000) / fs
        x = 0.7 * np.sin(2 * np.pi * 500.0 * t)
        env = envelope_amplitude(x, window=200)
        middle = env[1000:4000]
        assert np.mean(middle) == pytest.approx(0.7, rel=0.02)

    def test_envelope_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            envelope_amplitude(np.zeros(10), window=1)

    def test_tone_amplitude_phase(self):
        fs = 8000.0
        t = np.arange(4000) / fs
        x = 1.3 * np.cos(2 * np.pi * 440.0 * t + 0.4)
        amp, phase = tone_amplitude_phase(x, 440.0, fs)
        assert amp == pytest.approx(1.3, rel=0.01)
        assert phase == pytest.approx(0.4, abs=0.02)

    def test_three_db_bandwidth_first_order(self):
        fc = 50.0
        freqs = np.linspace(1.0, 500.0, 2000)
        mag = 1.0 / np.sqrt(1.0 + (freqs / fc) ** 2)
        assert three_db_bandwidth(freqs, mag) == pytest.approx(fc, rel=0.02)

    def test_three_db_bandwidth_flat_response(self):
        freqs = np.linspace(1.0, 100.0, 100)
        mag = np.ones(100)
        assert three_db_bandwidth(freqs, mag) == pytest.approx(100.0)

    def test_crossing_time_rising(self):
        t = np.linspace(0, 1, 101)
        y = t.copy()
        assert crossing_time(t, y, 0.5, rising=True) == pytest.approx(0.5, abs=0.01)

    def test_crossing_time_falling(self):
        t = np.linspace(0, 1, 101)
        y = 1.0 - t
        assert crossing_time(t, y, 0.5, rising=False) == pytest.approx(0.5, abs=0.01)

    def test_crossing_time_never(self):
        t = np.linspace(0, 1, 11)
        y = np.zeros(11)
        assert crossing_time(t, y, 0.5) is None

    @given(st.floats(min_value=0.1, max_value=5.0),
           st.floats(min_value=-2.0, max_value=2.0))
    @settings(max_examples=50, deadline=None)
    def test_linear_fit_property(self, slope, offset):
        x = np.linspace(0, 10, 20)
        y = slope * x + offset
        fit = linear_fit(x, y)
        assert fit.slope == pytest.approx(slope, rel=1e-6, abs=1e-9)
        assert fit.offset == pytest.approx(offset, rel=1e-6, abs=1e-6)
