"""Tests for the analog front-end models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.afe import (
    AdcConfig,
    AmplifierConfig,
    AntiAliasFilter,
    BANDWIDTH_SELECT_HZ,
    ChargeAmplifier,
    ChargeAmplifierConfig,
    ClockConfig,
    ClockGenerator,
    CurrentReference,
    Dac,
    DacConfig,
    FrontEndConfig,
    GyroAnalogFrontEnd,
    PowerSupply,
    ProgrammableGainAmplifier,
    ReferenceConfig,
    SarAdc,
    SinglePoleLowPass,
    SupplyConfig,
    VoltageReference,
    build_trim_bank,
    offset_trim_to_volts,
    volts_to_offset_trim,
)
from repro.common import ConfigurationError

FS = 120_000.0


class TestSarAdc:
    def test_lsb_size(self):
        adc = SarAdc(AdcConfig(bits=12, vref=2.5))
        assert adc.lsb_volts == pytest.approx(5.0 / 4096)

    def test_zero_converts_to_zero(self):
        adc = SarAdc(AdcConfig(bits=12, vref=2.5))
        assert adc.convert(0.0) == 0

    def test_full_scale_codes(self):
        adc = SarAdc(AdcConfig(bits=8, vref=1.0))
        assert adc.convert(10.0) == 127
        assert adc.convert(-10.0) == -128

    def test_code_range(self):
        adc = SarAdc(AdcConfig(bits=10, vref=1.0))
        assert adc.code_range == (-512, 511)

    def test_round_trip_error_below_lsb(self):
        adc = SarAdc(AdcConfig(bits=12, vref=2.5))
        for v in np.linspace(-2.4, 2.4, 37):
            assert abs(adc.sample(v) - v) <= adc.lsb_volts

    def test_offset_error_shifts_codes(self):
        ideal = SarAdc(AdcConfig(bits=12, vref=2.5))
        offset = SarAdc(AdcConfig(bits=12, vref=2.5, offset_error_v=0.1))
        assert offset.convert(0.0) > ideal.convert(0.0)

    def test_gain_error_scales(self):
        adc = SarAdc(AdcConfig(bits=12, vref=2.5, gain_error=0.1))
        assert adc.convert(1.0) == pytest.approx(
            SarAdc(AdcConfig(bits=12, vref=2.5)).convert(1.1), abs=1)

    def test_temperature_drift(self):
        adc = SarAdc(AdcConfig(bits=12, vref=2.5, offset_tc_v_per_c=1e-4))
        assert adc.convert(1.0, temperature_c=125.0) > adc.convert(1.0, temperature_c=25.0)

    def test_noise_changes_repeated_conversions(self):
        adc = SarAdc(AdcConfig(bits=14, vref=2.5, noise_rms_v=1e-3), seed=0)
        codes = {adc.convert(1.0) for _ in range(50)}
        assert len(codes) > 1

    def test_inl_bows_midscale(self):
        adc = SarAdc(AdcConfig(bits=12, vref=2.5, inl_lsb=2.0))
        ideal = SarAdc(AdcConfig(bits=12, vref=2.5))
        assert adc.convert(0.0) != ideal.convert(0.0) or \
            adc.convert(1.25) != ideal.convert(1.25)

    def test_set_resolution(self):
        adc = SarAdc(AdcConfig(bits=12, vref=2.5))
        adc.set_resolution(8)
        assert adc.code_range == (-128, 127)
        with pytest.raises(ConfigurationError):
            adc.set_resolution(20)

    def test_normalized_sample_in_unit_range(self):
        adc = SarAdc(AdcConfig(bits=12, vref=2.5))
        assert -1.0 <= adc.normalized_sample(5.0) <= 1.0
        assert adc.normalized_sample(1.25) == pytest.approx(0.5, abs=0.01)

    def test_rejects_invalid_config(self):
        with pytest.raises(ConfigurationError):
            AdcConfig(bits=4)
        with pytest.raises(ConfigurationError):
            AdcConfig(vref=0.0)
        with pytest.raises(ConfigurationError):
            AdcConfig(noise_rms_v=-1.0)

    @given(st.floats(min_value=-2.5, max_value=2.5),
           st.integers(min_value=8, max_value=16))
    @settings(max_examples=100, deadline=None)
    def test_quantisation_error_bounded(self, voltage, bits):
        adc = SarAdc(AdcConfig(bits=bits, vref=2.5))
        assert abs(adc.sample(voltage) - voltage) <= adc.lsb_volts

    @given(st.floats(min_value=-2.0, max_value=2.0))
    @settings(max_examples=50, deadline=None)
    def test_monotone(self, voltage):
        adc = SarAdc(AdcConfig(bits=12, vref=2.5))
        assert adc.convert(voltage + 0.01) >= adc.convert(voltage)


class TestDac:
    def test_bipolar_output_range(self):
        dac = Dac(DacConfig(bits=12, vref=2.5, bipolar=True))
        assert dac.write_normalized(1.0) == pytest.approx(2.5, abs=0.01)
        assert dac.write_normalized(-1.0) == pytest.approx(-2.5, abs=0.01)
        assert dac.write_normalized(0.0) == pytest.approx(0.0, abs=dac.lsb_volts)

    def test_unipolar_output_range(self):
        dac = Dac(DacConfig(bits=12, vref=5.0, bipolar=False))
        assert dac.write_normalized(0.5) == pytest.approx(2.5, abs=0.01)
        assert dac.write_normalized(0.0) == pytest.approx(0.0, abs=0.01)
        assert dac.write_normalized(2.0) == pytest.approx(5.0, abs=0.01)

    def test_output_holds_value(self):
        dac = Dac(DacConfig(bits=12, vref=2.5))
        dac.write_normalized(0.3)
        assert dac.output == pytest.approx(0.3 * 2.5, abs=dac.lsb_volts)

    def test_quantisation(self):
        dac = Dac(DacConfig(bits=6, vref=1.0))
        fine = Dac(DacConfig(bits=14, vref=1.0))
        coarse_out = dac.write_normalized(0.1234)
        fine_out = fine.write_normalized(0.1234)
        assert abs(coarse_out - fine_out) > fine.lsb_volts

    def test_write_voltage(self):
        dac = Dac(DacConfig(bits=12, vref=2.5))
        assert dac.write_voltage(1.0) == pytest.approx(1.0, abs=dac.lsb_volts)

    def test_reset(self):
        dac = Dac(DacConfig(bits=12, vref=2.5, bipolar=True))
        dac.write_normalized(0.7)
        dac.reset()
        assert dac.output == 0.0
        uni = Dac(DacConfig(bits=12, vref=5.0, bipolar=False))
        uni.reset()
        assert uni.output == pytest.approx(2.5)

    def test_set_resolution_and_validation(self):
        dac = Dac(DacConfig(bits=12, vref=2.5))
        dac.set_resolution(8)
        assert dac.lsb_volts == pytest.approx(5.0 / 256)
        with pytest.raises(ConfigurationError):
            dac.set_resolution(3)
        with pytest.raises(ConfigurationError):
            DacConfig(bits=40)
        with pytest.raises(ConfigurationError):
            DacConfig(vref=-1.0)

    @given(st.floats(min_value=-1.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_output_close_to_request(self, value):
        dac = Dac(DacConfig(bits=12, vref=2.5))
        assert abs(dac.write_normalized(value) - value * 2.5) <= dac.lsb_volts


class TestAmplifiers:
    def test_pga_gain_selection(self):
        pga = ProgrammableGainAmplifier(
            AmplifierConfig(gain_settings=(1.0, 2.0, 4.0), gain_index=0,
                            bandwidth_hz=None), FS)
        assert pga.gain == 1.0
        assert pga.select_gain(2) == 4.0
        with pytest.raises(ConfigurationError):
            pga.select_gain(5)

    def test_pga_amplifies(self):
        pga = ProgrammableGainAmplifier(
            AmplifierConfig(gain_settings=(4.0,), gain_index=0, bandwidth_hz=None),
            FS)
        assert pga.step(0.1) == pytest.approx(0.4)

    def test_pga_saturates_at_rails(self):
        pga = ProgrammableGainAmplifier(
            AmplifierConfig(gain_settings=(64.0,), gain_index=0,
                            bandwidth_hz=None, rail_v=2.5), FS)
        assert pga.step(1.0) == pytest.approx(2.5)
        assert pga.step(-1.0) == pytest.approx(-2.5)

    def test_pga_bandwidth_limits_response(self):
        pga = ProgrammableGainAmplifier(
            AmplifierConfig(gain_settings=(1.0,), gain_index=0,
                            bandwidth_hz=1000.0), FS)
        first = pga.step(1.0)
        assert first < 0.5  # slow single pole cannot reach the target in one sample
        for _ in range(int(FS / 100)):
            last = pga.step(1.0)
        assert last == pytest.approx(1.0, rel=0.01)

    def test_pga_set_bandwidth(self):
        pga = ProgrammableGainAmplifier(
            AmplifierConfig(gain_settings=(1.0,), gain_index=0), FS)
        pga.set_bandwidth(None)
        assert pga.step(1.0) == pytest.approx(1.0)
        with pytest.raises(ConfigurationError):
            pga.set_bandwidth(-10.0)

    def test_pga_offset_and_temperature(self):
        pga = ProgrammableGainAmplifier(
            AmplifierConfig(gain_settings=(1.0,), gain_index=0, bandwidth_hz=None,
                            offset_v=0.01, offset_tc_v_per_c=1e-4), FS)
        out25 = pga.step(0.0, temperature_c=25.0)
        pga.reset()
        out125 = pga.step(0.0, temperature_c=125.0)
        assert out25 == pytest.approx(0.01)
        assert out125 > out25

    def test_pga_config_validation(self):
        with pytest.raises(ConfigurationError):
            AmplifierConfig(gain_settings=())
        with pytest.raises(ConfigurationError):
            AmplifierConfig(gain_settings=(0.0,))
        with pytest.raises(ConfigurationError):
            AmplifierConfig(gain_index=10)
        with pytest.raises(ConfigurationError):
            AmplifierConfig(bandwidth_hz=-1.0)
        with pytest.raises(ConfigurationError):
            AmplifierConfig(rail_v=0.0)

    def test_charge_amp_gain_and_clipping(self):
        camp = ChargeAmplifier(ChargeAmplifierConfig(transimpedance_gain=2.0,
                                                     rail_v=1.0), FS)
        assert camp.step(0.2) == pytest.approx(0.4)
        assert camp.step(5.0) == pytest.approx(1.0)

    def test_charge_amp_validation(self):
        with pytest.raises(ConfigurationError):
            ChargeAmplifierConfig(transimpedance_gain=0.0)
        with pytest.raises(ConfigurationError):
            ChargeAmplifier(ChargeAmplifierConfig(), 0.0)


class TestFiltersAndReferences:
    def test_single_pole_dc_gain_unity(self):
        f = SinglePoleLowPass(1000.0, FS)
        for _ in range(int(FS / 100)):
            out = f.step(1.0)
        assert out == pytest.approx(1.0, rel=0.01)

    def test_single_pole_attenuates_high_freq(self):
        f = SinglePoleLowPass(100.0, FS)
        t = np.arange(int(FS * 0.05)) / FS
        x = np.sin(2 * np.pi * 10000.0 * t)
        y = f.process(x)
        assert np.std(y[len(y) // 2:]) < 0.05 * np.std(x)

    def test_single_pole_validation(self):
        with pytest.raises(ConfigurationError):
            SinglePoleLowPass(0.0, FS)
        with pytest.raises(ConfigurationError):
            SinglePoleLowPass(FS, FS)

    def test_antialias_magnitude(self):
        aa = AntiAliasFilter(40000.0, FS)
        assert aa.magnitude_at(0.0) == pytest.approx(1.0)
        assert aa.magnitude_at(40000.0) == pytest.approx(0.5)

    def test_antialias_reset(self):
        aa = AntiAliasFilter(10000.0, FS)
        aa.step(1.0)
        aa.reset()
        assert aa.step(0.0) == 0.0

    def test_voltage_reference_drift(self):
        ref = VoltageReference(ReferenceConfig(nominal=2.5, tc_ppm_per_c=20.0))
        assert ref.value(25.0) == pytest.approx(2.5)
        assert ref.value(125.0) == pytest.approx(2.5 * (1 + 20e-6 * 100))

    def test_current_reference(self):
        ref = CurrentReference(ReferenceConfig(nominal=1e-3))
        assert ref.value() == pytest.approx(1e-3)

    def test_reference_validation(self):
        with pytest.raises(ConfigurationError):
            ReferenceConfig(nominal=0.0)

    def test_power_supply(self):
        psu = PowerSupply(SupplyConfig(nominal_v=5.0))
        assert psu.midsupply() == pytest.approx(2.5)
        assert psu.analog_rail() <= 5.0 * 1.01
        with pytest.raises(ConfigurationError):
            psu.analog_rail(external_v=0.1)

    def test_clock_generator(self):
        clk = ClockGenerator(ClockConfig(frequency_hz=20e6), frequency_error_ppm=50.0)
        assert clk.actual_frequency_hz == pytest.approx(20e6 * (1 + 50e-6))
        assert clk.cycles_in(1e-3) == pytest.approx(20000, abs=2)
        with pytest.raises(ConfigurationError):
            ClockGenerator(ClockConfig(), frequency_error_ppm=1000.0)
        with pytest.raises(ConfigurationError):
            clk.cycles_in(-1.0)


class TestTrimBank:
    def test_default_registers_present(self):
        bank = build_trim_bank()
        for name in ("afe_primary_gain", "afe_adc_bits", "afe_status"):
            assert name in bank

    def test_offset_trim_conversion_round_trip(self):
        for volts in (-0.05, 0.0, 0.02, 0.0999):
            code = volts_to_offset_trim(volts)
            assert offset_trim_to_volts(code) == pytest.approx(volts, abs=1e-4)

    def test_offset_trim_clamps(self):
        assert volts_to_offset_trim(10.0) == 0xFFFF
        assert volts_to_offset_trim(-10.0) == 0

    def test_status_read_only(self):
        bank = build_trim_bank()
        bank.write("afe_status", 0x0)
        assert bank.read("afe_status") & 0x1 == 1


class TestGyroAnalogFrontEnd:
    def test_construction_default(self):
        afe = GyroAnalogFrontEnd()
        assert afe.trim.read("afe_adc_bits") == 12

    def test_acquire_returns_normalized_pair(self):
        afe = GyroAnalogFrontEnd()
        p, s = afe.acquire(0.1, -0.05)
        assert -1.0 <= p <= 1.0
        assert -1.0 <= s <= 1.0

    def test_acquire_tracks_input(self):
        cfg = FrontEndConfig()
        cfg.adc.noise_rms_v = 0.0
        cfg.primary_amplifier.noise_density_v_rthz = 0.0
        cfg.charge_amplifier.noise_density_v_rthz = 0.0
        afe = GyroAnalogFrontEnd(cfg)
        outputs = [afe.acquire(0.5, 0.0)[0] for _ in range(200)]
        # settled output reflects PGA gain of the primary channel (x2 default)
        assert outputs[-1] == pytest.approx(0.5 * 2.0 / 2.5, rel=0.05)

    def test_overload_flag(self):
        afe = GyroAnalogFrontEnd()
        for _ in range(100):
            afe.acquire(10.0, 0.0)
        assert afe.overload
        assert afe.trim.register("afe_status").read_field("overload") == 1

    def test_drive_outputs_voltages(self):
        afe = GyroAnalogFrontEnd()
        drive_v, control_v = afe.drive(0.5, -0.25)
        assert drive_v == pytest.approx(0.5 * 2.5, abs=0.01)
        assert control_v == pytest.approx(-0.25 * 2.5, abs=0.01)

    def test_rate_output_centred_on_midsupply(self):
        afe = GyroAnalogFrontEnd()
        null = afe.rate_output(0.0)
        assert null == pytest.approx(2.5, abs=0.01)
        assert afe.rate_output(0.5) > null
        assert afe.rate_output(-0.5) < null

    def test_gain_trim_changes_acquisition(self):
        cfg = FrontEndConfig()
        cfg.adc.noise_rms_v = 0.0
        cfg.primary_amplifier.noise_density_v_rthz = 0.0
        cfg.charge_amplifier.noise_density_v_rthz = 0.0
        afe = GyroAnalogFrontEnd(cfg)
        afe.trim.write("afe_primary_gain", 0)  # gain 1
        low = [afe.acquire(0.2, 0.0)[0] for _ in range(100)][-1]
        afe.trim.write("afe_primary_gain", 2)  # gain 4
        high = [afe.acquire(0.2, 0.0)[0] for _ in range(100)][-1]
        assert high == pytest.approx(4 * low, rel=0.05)

    def test_adc_bits_trim_changes_resolution(self):
        afe = GyroAnalogFrontEnd()
        afe.trim.write("afe_adc_bits", 8)
        assert afe.primary_adc.config.bits == 8
        afe.trim.write("afe_adc_bits", 30)  # clamped to 16
        assert afe.primary_adc.config.bits == 16

    def test_bandwidth_trim_changes_antialias(self):
        afe = GyroAnalogFrontEnd()
        afe.trim.write("afe_bandwidth_sel", 0)
        assert afe.primary_antialias.cutoff_hz == BANDWIDTH_SELECT_HZ[0]

    def test_output_offset_trim_moves_null(self):
        afe = GyroAnalogFrontEnd()
        null_before = afe.rate_output(0.0)
        afe.trim.write("afe_output_offset_trim", volts_to_offset_trim(0.05))
        null_after = afe.rate_output(0.0)
        assert null_after - null_before == pytest.approx(0.05, abs=0.01)

    def test_reset(self):
        afe = GyroAnalogFrontEnd()
        afe.acquire(1.0, 1.0)
        afe.drive(0.5, 0.5)
        afe.reset()
        assert afe.drive_dac.output == 0.0

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            FrontEndConfig(sample_rate_hz=0.0)
        with pytest.raises(ConfigurationError):
            FrontEndConfig(rate_output_sensitivity_v_per_fs=0.0)
