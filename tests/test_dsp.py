"""Tests for the DSP block IPs."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import ConfigurationError, DSP16, QFormat
from repro.dsp import (
    AgcConfig,
    BiquadFilter,
    CicDecimator,
    DigitalPll,
    Downsampler,
    DriveAgc,
    FirFilter,
    IirFilter,
    Mixer,
    Modulator,
    Nco,
    OffsetCompensation,
    OnePoleLowPass,
    PllConfig,
    QuadratureCancellation,
    QuadratureDemodulator,
    RateScaler,
    RateScalerConfig,
    SynchronousDemodulator,
    TemperatureCompensation,
    TemperatureCompensationConfig,
)

FS = 120_000.0


class TestFirFilter:
    def test_impulse_response_equals_coefficients(self):
        coeffs = [0.5, 0.3, 0.2]
        fir = FirFilter(coeffs)
        impulse = [1.0, 0.0, 0.0, 0.0]
        out = [fir.step(x) for x in impulse]
        assert out[:3] == pytest.approx(coeffs)
        assert out[3] == pytest.approx(0.0)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            FirFilter([])

    def test_moving_average(self):
        fir = FirFilter.moving_average(4)
        out = [fir.step(1.0) for _ in range(8)]
        assert out[3] == pytest.approx(1.0)
        with pytest.raises(ConfigurationError):
            FirFilter.moving_average(0)

    def test_low_pass_design_attenuates(self):
        fir = FirFilter.low_pass(63, 1000.0, FS)
        t = np.arange(4000) / FS
        low_tone = np.sin(2 * np.pi * 100.0 * t)
        high_tone = np.sin(2 * np.pi * 20000.0 * t)
        out_low = fir.process(low_tone)
        fir.reset()
        out_high = fir.process(high_tone)
        assert np.std(out_low[500:]) > 10 * np.std(out_high[500:])

    def test_low_pass_design_validation(self):
        with pytest.raises(ConfigurationError):
            FirFilter.low_pass(2, 100.0, FS)
        with pytest.raises(ConfigurationError):
            FirFilter.low_pass(31, FS, FS)

    def test_process_matches_step(self):
        coeffs = np.array([0.1, -0.2, 0.3, 0.05])
        x = np.random.default_rng(0).normal(size=50)
        f1 = FirFilter(coeffs)
        f2 = FirFilter(coeffs)
        step_out = np.array([f1.step(v) for v in x])
        proc_out = f2.process(x)
        assert np.allclose(step_out, proc_out)

    def test_process_preserves_state_between_calls(self):
        coeffs = np.array([0.25, 0.25, 0.25, 0.25])
        x = np.random.default_rng(1).normal(size=64)
        whole = FirFilter(coeffs).process(x)
        split = FirFilter(coeffs)
        part = np.concatenate([split.process(x[:20]), split.process(x[20:])])
        assert np.allclose(whole, part)

    def test_quantised_output(self):
        fmt = QFormat(int_bits=1, frac_bits=4)
        fir = FirFilter([1.0], output_format=fmt)
        assert fir.step(0.33) == pytest.approx(0.3125)

    def test_coefficient_quantisation(self):
        fmt = QFormat(int_bits=1, frac_bits=3)
        fir = FirFilter([0.3], coefficient_format=fmt)
        assert fir.coefficients[0] == pytest.approx(0.25)

    def test_frequency_response(self):
        fir = FirFilter.moving_average(8)
        h = fir.frequency_response(np.array([0.0]), FS)
        assert abs(h[0]) == pytest.approx(1.0)

    def test_order(self):
        assert FirFilter([1, 2, 3]).order == 2

    def test_empty_process(self):
        assert FirFilter([1.0]).process([]).size == 0


class TestIirFilter:
    def test_biquad_validation(self):
        with pytest.raises(ConfigurationError):
            BiquadFilter([1.0, 0.0], [1.0, 0.0, 0.0])
        with pytest.raises(ConfigurationError):
            BiquadFilter([1.0, 0.0, 0.0], [0.0, 0.0, 0.0])

    def test_biquad_passthrough(self):
        bq = BiquadFilter([1.0, 0.0, 0.0], [1.0, 0.0, 0.0])
        assert bq.step(0.7) == pytest.approx(0.7)

    def test_butterworth_dc_gain(self):
        lp = IirFilter.butterworth_low_pass(4, 50.0, FS)
        out = 0.0
        for _ in range(int(FS * 0.2)):
            out = lp.step(1.0)
        assert out == pytest.approx(1.0, rel=0.01)

    def test_butterworth_bandwidth(self):
        lp = IirFilter.butterworth_low_pass(4, 50.0, FS)
        assert lp.three_db_bandwidth_hz(FS, max_freq_hz=500.0) == pytest.approx(50.0, rel=0.05)

    def test_butterworth_attenuates_high_freq(self):
        lp = IirFilter.butterworth_low_pass(2, 100.0, FS)
        freqs = np.array([10.0, 1000.0, 10000.0])
        mag = np.abs(lp.frequency_response(freqs, FS))
        assert mag[0] > 0.99
        assert mag[1] < 0.05
        assert mag[2] < 0.001

    def test_high_pass_design(self):
        hp = IirFilter.butterworth_high_pass(2, 1000.0, FS)
        freqs = np.array([10.0, 10000.0])
        mag = np.abs(hp.frequency_response(freqs, FS))
        assert mag[0] < 0.05
        assert mag[1] > 0.9

    def test_design_validation(self):
        with pytest.raises(ConfigurationError):
            IirFilter.butterworth_low_pass(0, 50.0, FS)
        with pytest.raises(ConfigurationError):
            IirFilter.butterworth_low_pass(2, FS, FS)
        with pytest.raises(ConfigurationError):
            IirFilter.butterworth_high_pass(0, 50.0, FS)
        with pytest.raises(ConfigurationError):
            IirFilter([])

    def test_process_matches_step(self):
        x = np.random.default_rng(2).normal(size=200)
        f1 = IirFilter.butterworth_low_pass(4, 500.0, FS)
        f2 = IirFilter.butterworth_low_pass(4, 500.0, FS)
        step_out = np.array([f1.step(v) for v in x])
        proc_out = f2.process(x)
        assert np.allclose(step_out, proc_out, atol=1e-12)

    def test_reset(self):
        lp = IirFilter.butterworth_low_pass(2, 100.0, FS)
        lp.step(1.0)
        lp.reset()
        assert lp.step(0.0) == pytest.approx(0.0)

    def test_one_pole_low_pass(self):
        lp = OnePoleLowPass(100.0, FS)
        for _ in range(int(FS * 0.1)):
            out = lp.step(2.0)
        assert out == pytest.approx(2.0, rel=0.01)
        lp.reset()
        assert lp.step(0.0) == 0.0

    def test_one_pole_validation(self):
        with pytest.raises(ConfigurationError):
            OnePoleLowPass(0.0, FS)
        with pytest.raises(ConfigurationError):
            OnePoleLowPass(FS, FS)


class TestNco:
    def test_generates_requested_frequency(self):
        nco = Nco(15000.0, FS)
        n = int(FS * 0.01)
        samples = np.array([nco.step()[0] for _ in range(n)])
        spectrum = np.abs(np.fft.rfft(samples * np.hanning(n)))
        freqs = np.fft.rfftfreq(n, 1.0 / FS)
        assert freqs[np.argmax(spectrum)] == pytest.approx(15000.0, abs=200.0)

    def test_sin_cos_orthogonal(self):
        nco = Nco(15000.0, FS)
        samples = [nco.step() for _ in range(int(FS * 0.01))]
        sins = np.array([s for s, _ in samples])
        coss = np.array([c for _, c in samples])
        assert abs(np.mean(sins * coss)) < 0.01
        assert np.mean(sins ** 2) == pytest.approx(0.5, abs=0.02)

    def test_tuning_changes_frequency(self):
        nco = Nco(15000.0, FS, tuning_range_hz=500.0)
        nco.tuning_hz = 200.0
        assert nco.frequency_hz == pytest.approx(15200.0)

    def test_tuning_clamped(self):
        nco = Nco(15000.0, FS, tuning_range_hz=100.0)
        nco.tuning_hz = 1e6
        assert nco.tuning_hz == 100.0
        nco.tuning_hz = -1e6
        assert nco.tuning_hz == -100.0

    def test_reset(self):
        nco = Nco(15000.0, FS, initial_phase_rad=0.5)
        nco.step()
        nco.tuning_hz = 50.0
        nco.reset()
        assert nco.phase == pytest.approx(0.5)
        assert nco.tuning_hz == 0.0

    def test_quantised_output(self):
        fmt = QFormat(int_bits=1, frac_bits=3)
        nco = Nco(15000.0, FS, output_format=fmt)
        s, c = nco.step()
        assert s in [i * fmt.lsb for i in range(-16, 16)]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Nco(0.0, FS)
        with pytest.raises(ConfigurationError):
            Nco(15000.0, 20000.0)
        with pytest.raises(ConfigurationError):
            Nco(15000.0, FS, tuning_range_hz=-1.0)


class TestMixers:
    def test_mixer_multiplies(self):
        m = Mixer()
        assert m.mix(0.5, 0.5) == pytest.approx(0.25)

    def test_mixer_quantises(self):
        m = Mixer(output_format=QFormat(int_bits=1, frac_bits=2))
        assert m.mix(0.4, 0.9) == pytest.approx(0.25)

    def test_synchronous_demodulator_recovers_amplitude(self):
        demod = SynchronousDemodulator(500.0, FS)
        w = 2 * math.pi * 15000.0
        out = 0.0
        for i in range(int(FS * 0.05)):
            ref = math.cos(w * i / FS)
            out = demod.demodulate(0.3 * ref, ref)
        assert out == pytest.approx(0.3, rel=0.05)

    def test_synchronous_demodulator_rejects_quadrature(self):
        demod = SynchronousDemodulator(500.0, FS)
        w = 2 * math.pi * 15000.0
        out = 0.0
        for i in range(int(FS * 0.05)):
            out = demod.demodulate(0.3 * math.sin(w * i / FS), math.cos(w * i / FS))
        assert abs(out) < 0.02

    def test_demodulator_validation(self):
        with pytest.raises(ConfigurationError):
            SynchronousDemodulator(0.0, FS)

    def test_quadrature_demodulator_separates_channels(self):
        qd = QuadratureDemodulator(500.0, FS)
        w = 2 * math.pi * 15000.0
        for i in range(int(FS * 0.05)):
            ref_c = math.cos(w * i / FS)
            ref_s = math.sin(w * i / FS)
            signal = 0.2 * ref_c + 0.05 * ref_s
            i_out, q_out = qd.step(signal, ref_c, ref_s)
        assert i_out == pytest.approx(0.2, rel=0.1)
        assert q_out == pytest.approx(0.05, rel=0.2)

    def test_modulator(self):
        mod = Modulator()
        assert mod.modulate(0.5, -1.0) == pytest.approx(-0.5)
        mod.set_carrier(0.5)
        assert mod.step(0.5) == pytest.approx(0.25)


class TestCompensation:
    def test_offset_compensation(self):
        comp = OffsetCompensation(offset=0.1)
        assert comp.step(0.5) == pytest.approx(0.4)

    def test_temperature_compensation_removes_linear_drift(self):
        cfg = TemperatureCompensationConfig(offset_poly=(0.0, 0.01),
                                            sensitivity_poly=(0.0,))
        comp = TemperatureCompensation(cfg)
        # signal with a 0.01/°C offset drift is corrected back
        raw_at_85 = 0.5 + 0.01 * 60.0
        assert comp.step(raw_at_85, temperature_c=85.0) == pytest.approx(0.5)

    def test_temperature_compensation_sensitivity(self):
        cfg = TemperatureCompensationConfig(offset_poly=(0.0,),
                                            sensitivity_poly=(-1e-3,))
        comp = TemperatureCompensation(cfg)
        raw = 0.5 * (1.0 - 1e-3 * 60.0)
        assert comp.step(raw, temperature_c=85.0) == pytest.approx(0.5)

    def test_temperature_compensation_validation(self):
        with pytest.raises(ConfigurationError):
            TemperatureCompensationConfig(offset_poly=())

    def test_quadrature_cancellation(self):
        qc = QuadratureCancellation(coefficient=0.1)
        assert qc.step(1.0, 0.5) == pytest.approx(0.95)

    def test_rate_scaler_round_trip(self):
        scaler = RateScaler(RateScalerConfig(full_scale_dps=300.0,
                                             scale_dps_per_unit=100.0))
        assert scaler.to_dps(1.5) == pytest.approx(150.0)
        assert scaler.to_output_word(150.0) == pytest.approx(0.5)
        assert scaler.step(1.5) == pytest.approx(0.5)

    def test_rate_scaler_clips(self):
        scaler = RateScaler(RateScalerConfig(full_scale_dps=300.0))
        assert scaler.to_output_word(1000.0) == 1.0
        assert scaler.to_output_word(-1000.0) == -1.0

    def test_rate_scaler_calibrate(self):
        scaler = RateScaler()
        scaler.calibrate(measured_channel_per_dps=0.02)
        assert scaler.to_dps(0.02) == pytest.approx(1.0)
        with pytest.raises(ConfigurationError):
            scaler.calibrate(0.0)

    def test_rate_scaler_validation(self):
        with pytest.raises(ConfigurationError):
            RateScalerConfig(volts_per_dps=0.0)
        with pytest.raises(ConfigurationError):
            RateScalerConfig(full_scale_dps=-1.0)

    def test_rate_scaler_output_sensitivity(self):
        scaler = RateScaler(RateScalerConfig(full_scale_dps=300.0))
        assert scaler.output_volts_per_dps(1.5) == pytest.approx(0.005)


class TestDecimators:
    def test_cic_constant_input(self):
        cic = CicDecimator(decimation=8, order=2)
        outputs = cic.process(np.ones(64))
        assert outputs.size == 8
        assert outputs[-1] == pytest.approx(1.0)

    def test_cic_output_rate(self):
        cic = CicDecimator(decimation=4, order=1)
        outs = [cic.step(1.0) for _ in range(12)]
        assert sum(o is not None for o in outs) == 3

    def test_cic_attenuates_high_frequency(self):
        cic = CicDecimator(decimation=16, order=3)
        n = 4096
        t = np.arange(n) / FS
        low = cic.process(np.sin(2 * np.pi * 50.0 * t))
        cic.reset()
        high = cic.process(np.sin(2 * np.pi * 30000.0 * t))
        assert np.std(low[10:]) > 5 * np.std(high[10:])

    def test_cic_process_matches_step(self):
        # the vectorised process() must reproduce the scalar step() stream
        # exactly, including across call boundaries at awkward phases
        rng = np.random.default_rng(3)
        x = rng.normal(0.0, 1.0, 1001)
        a = CicDecimator(decimation=8, order=3)
        b = CicDecimator(decimation=8, order=3)
        scalar = [y for y in (a.step(float(v)) for v in x) if y is not None]
        chunks = [b.process(x[:5]), b.process(x[5:700]), b.process(x[700:])]
        vectorised = np.concatenate(chunks)
        np.testing.assert_array_equal(vectorised, np.asarray(scalar))
        assert a._integrators == b._integrators
        assert a._combs == b._combs
        assert a._phase == b._phase

    def test_cic_process_matches_step_quantised(self):
        rng = np.random.default_rng(4)
        x = rng.normal(0.0, 0.3, 257)
        fmt = QFormat(int_bits=1, frac_bits=10)
        a = CicDecimator(decimation=4, order=2, output_format=fmt)
        b = CicDecimator(decimation=4, order=2, output_format=fmt)
        scalar = [y for y in (a.step(float(v)) for v in x) if y is not None]
        np.testing.assert_array_equal(b.process(x), np.asarray(scalar))

    def test_cic_process_interleaves_with_step(self):
        a = CicDecimator(decimation=4, order=2)
        b = CicDecimator(decimation=4, order=2)
        x = np.arange(40, dtype=np.float64)
        scalar = [y for y in (a.step(float(v)) for v in x) if y is not None]
        mixed = list(b.process(x[:6]))
        mixed += [y for y in (b.step(float(v)) for v in x[6:13])
                  if y is not None]
        mixed += list(b.process(x[13:]))
        np.testing.assert_array_equal(np.asarray(mixed), np.asarray(scalar))

    def test_cic_process_empty(self):
        cic = CicDecimator(decimation=4, order=2)
        assert cic.process(np.zeros(0)).size == 0
        # fewer samples than needed to reach the next emission
        assert cic.process(np.ones(2)).size == 0
        assert cic._phase == 2

    def test_cic_validation(self):
        with pytest.raises(ConfigurationError):
            CicDecimator(0)
        with pytest.raises(ConfigurationError):
            CicDecimator(4, order=0)

    def test_downsampler(self):
        ds = Downsampler(3)
        outs = [ds.step(float(i)) for i in range(9)]
        values = [o for o in outs if o is not None]
        assert values == [2.0, 5.0, 8.0]
        ds.reset()
        assert ds.step(1.0) is None

    def test_downsampler_validation(self):
        with pytest.raises(ConfigurationError):
            Downsampler(0)


class TestAgc:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            AgcConfig(target_amplitude=0.0)
        with pytest.raises(ConfigurationError):
            AgcConfig(kp=-1.0)
        with pytest.raises(ConfigurationError):
            AgcConfig(startup_gain=2.0)
        with pytest.raises(ConfigurationError):
            AgcConfig(min_gain=0.5, max_gain=0.2, startup_gain=0.3)

    def test_starts_at_startup_gain(self):
        agc = DriveAgc(AgcConfig(startup_gain=0.8))
        assert agc.gain == pytest.approx(0.8)

    def test_gain_decreases_when_amplitude_too_high(self):
        agc = DriveAgc(AgcConfig(target_amplitude=0.5, startup_gain=0.8))
        g0 = agc.gain
        for _ in range(1000):
            g = agc.step(0.9)
        assert g < g0

    def test_gain_increases_when_amplitude_too_low(self):
        agc = DriveAgc(AgcConfig(target_amplitude=0.5, startup_gain=0.2))
        for _ in range(1000):
            g = agc.step(0.1)
        assert g > 0.2

    def test_gain_clamped(self):
        agc = DriveAgc(AgcConfig(target_amplitude=0.5, max_gain=1.0, startup_gain=0.9))
        for _ in range(100000):
            g = agc.step(0.0)
        assert g == pytest.approx(1.0)
        for _ in range(200000):
            g = agc.step(2.0)
        assert g == pytest.approx(0.0)

    def test_settled_flag(self):
        agc = DriveAgc(AgcConfig(target_amplitude=0.5, settle_threshold=0.02))
        agc.step(0.5)
        assert agc.settled
        agc.step(0.1)
        assert not agc.settled

    def test_reset(self):
        agc = DriveAgc()
        for _ in range(100):
            agc.step(1.0)
        agc.reset()
        assert agc.gain == pytest.approx(agc.config.startup_gain)

    def test_closed_loop_first_order_plant(self):
        # plant: amplitude responds to gain through a slow first-order lag
        agc = DriveAgc(AgcConfig(target_amplitude=0.5, kp=0.2, ki=1e-3))
        amplitude = 0.0
        plant_gain = 0.9
        alpha = 1.0 - math.exp(-1.0 / (0.02 * FS))
        for _ in range(int(FS * 0.8)):
            drive = agc.step(amplitude)
            amplitude += alpha * (plant_gain * drive - amplitude)
        assert amplitude == pytest.approx(0.5, rel=0.05)


class TestDigitalPll:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            PllConfig(center_frequency_hz=0.0)
        with pytest.raises(ConfigurationError):
            PllConfig(sample_rate_hz=20000.0, center_frequency_hz=15000.0)
        with pytest.raises(ConfigurationError):
            PllConfig(kp=-1.0)
        with pytest.raises(ConfigurationError):
            PllConfig(lock_count=0)

    def test_free_runs_without_signal(self):
        pll = DigitalPll(PllConfig(sample_rate_hz=FS))
        for _ in range(1000):
            pll.step(0.0)
        assert pll.frequency_hz == pytest.approx(15000.0)
        assert not pll.locked
        assert pll.amplitude_estimate == pytest.approx(0.0, abs=1e-6)

    def test_tracks_external_tone_frequency(self):
        # external tone 80 Hz above the centre: the loop should pull the NCO
        # frequency toward the tone
        cfg = PllConfig(sample_rate_hz=FS, kp=40.0, ki=0.02, lock_count=500)
        pll = DigitalPll(cfg)
        f_tone = 15080.0
        w = 2 * math.pi * f_tone
        for i in range(int(FS * 0.3)):
            # external tone behaves like the resonator pick-off: lags the
            # drive reference by 90 deg when on frequency
            pll.step(0.5 * math.sin(w * i / FS))
        assert pll.frequency_hz == pytest.approx(f_tone, abs=20.0)

    def test_freerun_drops_stale_tuning_word(self):
        # regression: after losing the input signal the NCO must actually
        # free-run at the centre frequency — a stale tuning word used to
        # keep it at the last tracked frequency
        cfg = PllConfig(sample_rate_hz=FS, kp=40.0, ki=0.02)
        pll = DigitalPll(cfg)
        w = 2 * math.pi * 15080.0
        for i in range(int(FS * 0.2)):
            pll.step(0.5 * math.sin(w * i / FS))
        assert pll.nco.tuning_hz != 0.0  # the loop pulled the NCO
        # signal disappears: amplitude estimate decays below threshold
        for _ in range(int(FS * 0.1)):
            pll.step(0.0)
        assert pll.amplitude_estimate < cfg.amplitude_threshold
        assert pll.nco.tuning_hz == 0.0
        assert pll.frequency_hz == pytest.approx(cfg.center_frequency_hz)
        assert not pll.locked

    def test_amplitude_estimate_tracks_input(self):
        pll = DigitalPll(PllConfig(sample_rate_hz=FS))
        w = 2 * math.pi * 15000.0
        for i in range(int(FS * 0.1)):
            pll.step(0.4 * math.sin(w * i / FS))
        assert pll.amplitude_estimate == pytest.approx(0.4, rel=0.15)

    def test_reset(self):
        pll = DigitalPll(PllConfig(sample_rate_hz=FS))
        w = 2 * math.pi * 15050.0
        for i in range(10000):
            pll.step(0.5 * math.sin(w * i / FS))
        pll.reset()
        assert pll.frequency_hz == pytest.approx(15000.0)
        assert pll.vco_control_hz == 0.0
        assert not pll.locked

    def test_references_are_unit_amplitude(self):
        pll = DigitalPll(PllConfig(sample_rate_hz=FS))
        s, c = pll.step(0.0)
        assert abs(s) <= 1.0 and abs(c) <= 1.0
        assert s ** 2 + c ** 2 == pytest.approx(1.0, abs=1e-9)


class TestDriveLoopWithResonator:
    """Closed-loop integration: PLL + AGC driving the mechanical resonator."""

    def _run_drive_loop(self, resonance_hz, duration_s=0.6, fs=FS):
        from repro.sensors import ResonatorMode

        mode = ResonatorMode(resonance_hz, 4000.0, 1.0 / fs)
        pll = DigitalPll(PllConfig(center_frequency_hz=15000.0, sample_rate_hz=fs))
        agc = DriveAgc(AgcConfig(target_amplitude=0.5))
        pickoff_gain = 5.0e5 * 2.0 / 2.5  # sensor pick-off * PGA / ADC ref
        drive_gain = 2.0 * 2.5            # DAC ref * electrode gain
        sin_ref, cos_ref = 0.0, 1.0
        pickoff_norm = 0.0
        for _ in range(int(duration_s * fs)):
            sin_ref, cos_ref = pll.step(pickoff_norm)
            gain = agc.step(pll.amplitude_estimate)
            drive_accel = gain * cos_ref * drive_gain
            x = mode.step(drive_accel)
            pickoff_norm = x * pickoff_gain
        return pll, agc

    def test_locks_to_nominal_resonance(self):
        pll, agc = self._run_drive_loop(15000.0)
        assert pll.locked
        assert pll.amplitude_estimate == pytest.approx(0.5, rel=0.1)
        assert abs(pll.phase_error) < 0.05

    def test_locks_to_shifted_resonance(self):
        pll, agc = self._run_drive_loop(15060.0, duration_s=1.0)
        assert pll.locked
        assert pll.frequency_hz == pytest.approx(15060.0, abs=15.0)
        assert pll.amplitude_estimate == pytest.approx(0.5, rel=0.15)
