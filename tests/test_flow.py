"""Tests for the platform-based design flow package."""

import numpy as np
import pytest

from repro.common import ConfigurationError, Gain, PartitioningError, VerificationError
from repro.common.fixedpoint import QFormat
from repro.dsp import FirFilter
from repro.flow import (
    AbstractionLevel,
    AsicProcess,
    DesignFlow,
    DesignFlowStage,
    DseConfig,
    DesignPoint,
    FpgaDevice,
    ImplementationCandidate,
    PartitioningWeights,
    SystemFunction,
    build_gyro_design_flow,
    compare_traces,
    estimate_asic,
    estimate_fpga_prototype,
    evaluate_point,
    explore,
    gyro_system_functions,
    pareto_front,
    partition,
    recommend,
    require_pass,
    verify_block_refinement,
)
from repro.platform import Domain, GenericSensorPlatform


class TestDesignFlow:
    def test_stage_ordering_and_execution(self):
        flow = DesignFlow()
        order = []
        flow.add_stage(DesignFlowStage("a", AbstractionLevel.SYSTEM, [],
                                       lambda ctx: order.append("a") or {}))
        flow.add_stage(DesignFlowStage("b", AbstractionLevel.RTL, ["a"],
                                       lambda ctx: order.append("b") or {}))
        results = flow.execute()
        assert [r.name for r in results] == ["a", "b"]
        assert flow.succeeded
        assert order == ["a", "b"]

    def test_duplicate_and_unknown_dependency_rejected(self):
        flow = DesignFlow()
        flow.add_stage(DesignFlowStage("a", AbstractionLevel.SYSTEM))
        with pytest.raises(ConfigurationError):
            flow.add_stage(DesignFlowStage("a", AbstractionLevel.SYSTEM))
        with pytest.raises(ConfigurationError):
            flow.add_stage(DesignFlowStage("b", AbstractionLevel.RTL, ["zzz"]))

    def test_failure_blocks_dependents(self):
        flow = DesignFlow()

        def boom(ctx):
            raise RuntimeError("synthesis failed")

        flow.add_stage(DesignFlowStage("a", AbstractionLevel.SYSTEM, [], boom))
        flow.add_stage(DesignFlowStage("b", AbstractionLevel.RTL, ["a"]))
        results = flow.execute(stop_on_failure=False)
        assert not results[0].passed
        assert not results[1].passed
        assert "blocked" in results[1].message
        assert not flow.succeeded

    def test_gyro_flow_structure(self):
        flow = build_gyro_design_flow()
        names = flow.stage_names()
        assert names[0] == "system_model"
        assert "partitioning" in names
        assert names[-1] == "asic_integration"
        results = flow.execute()
        assert flow.succeeded
        report = flow.report()
        assert "prototyping" in report and "PASS" in report

    def test_gyro_flow_with_actions_and_context(self):
        seen = {}
        flow = build_gyro_design_flow({
            "system_model": lambda ctx: ctx.update(model="matlab") or {"blocks": 12},
            "partitioning": lambda ctx: {"analog": 4, "digital": 6, "software": 2},
        })
        flow.execute()
        assert flow.succeeded
        assert flow.results["system_model"].details["blocks"] == 12
        assert flow.context["model"] == "matlab"


class TestPartitioning:
    def test_gyro_partition_shape(self):
        result = partition(gyro_system_functions())
        # the paper's argument: sample-rate signal processing goes to
        # hardwired digital, services go to software, only the physical
        # interface stays analog
        assert result.domain_of("drive_pll") is Domain.DIGITAL_HW
        assert result.domain_of("rate_demodulation") is Domain.DIGITAL_HW
        assert result.domain_of("pickoff_acquisition") is Domain.ANALOG
        assert result.domain_of("communication_services") is Domain.SOFTWARE
        assert result.domain_of("status_monitoring") is Domain.SOFTWARE

    def test_costs_roll_up(self):
        result = partition(gyro_system_functions())
        assert result.analog_area_mm2 > 0
        assert result.digital_gates > 0
        assert result.code_bytes > 0
        assert result.total_cost > 0

    def test_infeasible_function_raises(self):
        functions = [SystemFunction("impossible", 1e6, [
            ImplementationCandidate(Domain.SOFTWARE, max_update_rate_hz=100.0,
                                    flexibility=1.0)])]
        with pytest.raises(PartitioningError):
            partition(functions)

    def test_weights_change_choice(self):
        functions = [SystemFunction("filter", 1000.0, [
            ImplementationCandidate(Domain.ANALOG, area_mm2=1.0, power_mw=0.1),
            ImplementationCandidate(Domain.DIGITAL_HW, gates=50_000, power_mw=5.0),
        ])]
        analog_cheap = partition(functions, PartitioningWeights(area_mm2=0.01,
                                                                power_mw=0.01))
        digital_cheap = partition(functions, PartitioningWeights(area_mm2=100.0,
                                                                 gates=1e-6,
                                                                 power_mw=0.01))
        assert analog_cheap.domain_of("filter") is Domain.ANALOG
        assert digital_cheap.domain_of("filter") is Domain.DIGITAL_HW

    def test_functions_in_domain(self):
        result = partition(gyro_system_functions())
        assert "communication_services" in result.functions_in_domain(Domain.SOFTWARE)


class TestPrototypeAndAsic:
    def test_fpga_estimate_matches_paper_scale(self):
        instance = GenericSensorPlatform().derive("gyro")
        report = estimate_fpga_prototype(instance, clock_mhz=20.0)
        # Section 4.3: ~200 kgates in a X2S600E at 20 MHz
        assert 150_000 < report.design_gates < 250_000
        assert report.fits
        assert report.timing_met
        assert "X2S600E" in report.summary()

    def test_fpga_overflow_detected(self):
        instance = GenericSensorPlatform().derive("gyro")
        tiny = FpgaDevice(name="tiny", system_gates=100_000)
        report = estimate_fpga_prototype(instance, device=tiny)
        assert not report.fits

    def test_fpga_timing_violation(self):
        instance = GenericSensorPlatform().derive("gyro")
        report = estimate_fpga_prototype(instance, clock_mhz=80.0)
        assert not report.timing_met
        with pytest.raises(ConfigurationError):
            estimate_fpga_prototype(instance, clock_mhz=0.0)

    def test_asic_estimate_matches_paper_scale(self):
        instance = GenericSensorPlatform().derive("gyro")
        report = estimate_asic(instance)
        # the paper's analog front-end chip is 12 mm2 in 0.35 um CMOS
        assert 4.0 < report.analog_area_mm2 < 15.0
        assert report.total_die_mm2 > report.analog_area_mm2
        assert "0.35" in report.summary()

    def test_asic_process_parameters(self):
        instance = GenericSensorPlatform().derive("gyro")
        dense = estimate_asic(instance, AsicProcess(gate_density_kgates_per_mm2=50.0))
        sparse = estimate_asic(instance, AsicProcess(gate_density_kgates_per_mm2=10.0))
        assert dense.digital_area_mm2 < sparse.digital_area_mm2


class TestVerification:
    def test_identical_traces_pass(self):
        x = np.linspace(0, 1, 100)
        report = compare_traces(x, x, tolerance=1e-9)
        assert report.passed
        assert report.max_abs_error == 0.0

    def test_deviating_trace_fails(self):
        x = np.zeros(50)
        y = np.zeros(50)
        y[25] = 1.0
        report = compare_traces(x, y, tolerance=0.1)
        assert not report.passed
        with pytest.raises(VerificationError):
            require_pass(report)

    def test_skip_fraction_ignores_startup(self):
        x = np.zeros(100)
        y = np.zeros(100)
        y[0] = 5.0
        assert not compare_traces(x, y, 0.1).passed
        assert compare_traces(x, y, 0.1, skip_fraction=0.1).passed

    def test_shape_and_bounds_validation(self):
        with pytest.raises(ConfigurationError):
            compare_traces(np.zeros(3), np.zeros(4), 0.1)
        with pytest.raises(ConfigurationError):
            compare_traces(np.zeros(0), np.zeros(0), 0.1)
        with pytest.raises(ConfigurationError):
            compare_traces(np.zeros(3), np.zeros(3), 0.1, skip_fraction=1.5)

    def test_block_refinement_fixed_point_filter(self):
        taps = [0.25, 0.25, 0.25, 0.25]
        reference = FirFilter(taps)
        refined = FirFilter(taps, output_format=QFormat(int_bits=1, frac_bits=12))
        stimulus = np.sin(np.linspace(0, 20, 200))
        report = verify_block_refinement(reference, refined, stimulus,
                                         tolerance=1e-3)
        assert report.passed

    def test_block_refinement_detects_wrong_gain(self):
        report = verify_block_refinement(Gain(1.0), Gain(1.1),
                                         np.ones(50), tolerance=0.01)
        assert not report.passed


class TestDse:
    def test_explore_returns_sorted_scores(self):
        evaluated = explore(DseConfig(adc_bits=(10, 12), dsp_word_lengths=(16,),
                                      filter_orders=(2, 4), bandwidths_hz=(50.0,)))
        scores = [e.score for e in evaluated]
        assert scores == sorted(scores)
        assert len(evaluated) == 4

    def test_more_adc_bits_less_noise(self):
        low = evaluate_point(DesignPoint(8, 16, 4, 50.0))
        high = evaluate_point(DesignPoint(14, 16, 4, 50.0))
        assert high.noise_density_dps_rthz < low.noise_density_dps_rthz

    def test_more_word_length_more_gates(self):
        small = evaluate_point(DesignPoint(12, 12, 4, 50.0))
        large = evaluate_point(DesignPoint(12, 24, 4, 50.0))
        assert large.digital_gates > small.digital_gates

    def test_pareto_front_is_nondominated(self):
        evaluated = explore()
        front = pareto_front(evaluated)
        assert front
        for a in front:
            assert not any(
                b.noise_density_dps_rthz < a.noise_density_dps_rthz
                and b.digital_gates < a.digital_gates for b in evaluated)

    def test_recommend_meets_noise_requirement(self):
        best = recommend()
        assert best.noise_density_dps_rthz <= 0.13
        # the recommendation is the lowest-score point among the feasible ones
        feasible = [e for e in explore() if e.noise_density_dps_rthz <= 0.13]
        assert best.score == pytest.approx(min(e.score for e in feasible))

    def test_recommend_can_fail(self):
        impossible = DseConfig(adc_bits=(8,), dsp_word_lengths=(12,),
                               filter_orders=(2,), bandwidths_hz=(75.0,),
                               mechanical_noise_dps_rthz=1.0)
        with pytest.raises(ConfigurationError):
            recommend(impossible)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            DseConfig(adc_bits=())

    def test_summaries(self):
        assert "gates" in evaluate_point(DesignPoint(12, 16, 4, 50.0)).summary()


class TestSimulationBackedDse:
    def test_platform_config_mapping(self):
        from repro.flow import platform_config_for_point

        point = DesignPoint(10, 16, 2, 25.0)
        config = platform_config_for_point(point)
        assert config.frontend.adc.bits == 10
        fmt = config.conditioner.sense.output_format
        assert fmt.word_length == 16
        assert config.conditioner.drive.output_format == fmt
        assert config.conditioner.sense.output_filter_order == 2
        assert config.conditioner.sense.output_bandwidth_hz == 25.0

    def test_word_length_floor_rejected(self):
        from repro.flow import platform_config_for_point

        with pytest.raises(ConfigurationError):
            platform_config_for_point(DesignPoint(12, 6, 4, 50.0))

    def test_simulate_point_before_startup_reports_not_started(self):
        # a window shorter than start-up must be reported honestly, not
        # as zero noise
        from repro.flow import simulate_point

        evaluated = evaluate_point(DesignPoint(12, 16, 2, 50.0))
        simulated = simulate_point(evaluated, duration_s=0.05)
        assert not simulated.started
        assert not simulated.responsive
        assert simulated.turn_on_time_s is None
        assert np.isnan(simulated.measured_noise_dps_rthz)
        assert "start-up" in simulated.summary()

    def test_simulated_point_responsive_logic(self):
        from repro.flow import SimulatedPoint

        evaluated = evaluate_point(DesignPoint(12, 16, 2, 50.0))
        dead = SimulatedPoint(evaluated, float("nan"), float("nan"), 0.0, 0.4)
        assert dead.started and not dead.responsive
        assert "quantisation" in dead.summary()
        live = SimulatedPoint(evaluated, 0.08, 1.5, -3.8e-5, 0.4)
        assert live.responsive
        assert "measured noise" in live.summary()
        assert live.point is evaluated.point

    def test_responsive_handles_nan_scale(self):
        # regression: the old `x == x` check; nan scale means the
        # measurement never produced a response, so not responsive
        from repro.flow import SimulatedPoint

        evaluated = evaluate_point(DesignPoint(12, 16, 2, 50.0))
        nan_scale = SimulatedPoint(evaluated, float("nan"), float("nan"),
                                   float("nan"), 0.4)
        assert nan_scale.started
        assert not nan_scale.responsive

    def test_sweep_needs_candidates(self):
        from repro.flow import sweep

        with pytest.raises(ConfigurationError):
            sweep(points=[])


class TestSimulationBackedSweep:
    """The full simulation-backed DSE sweep (heavyweight acceptance).

    One sweep() call validates eight design points through the campaign
    runner — packed into two batched fleets, one per vectorised-state
    structure — and must keep reporting the known Q1.14 failure mode
    honestly: with the 16-bit (Q1.14) datapath the order-4 output
    filter's per-section quantisation wipes out the rate signal, so
    those points come back started-but-unresponsive.
    """

    def test_sweep_validates_points_and_reports_q114_failure(self):
        from repro.flow import sweep

        points = [evaluate_point(DesignPoint(adc, 16, order, 50.0))
                  for order in (2, 4) for adc in (8, 10, 12, 14)]
        simulated = sweep(points=points)
        assert len(simulated) == 8
        by_order = {2: [], 4: []}
        for sim in simulated:
            assert sim.started, sim.summary()
            by_order[sim.point.output_filter_order].append(sim)
        # order-2 datapaths respond to rate...
        for sim in by_order[2]:
            assert sim.responsive, sim.summary()
            assert sim.measured_scale_channel_per_dps != 0.0
        # ...the Q1.14 order-4 output filter quantises the signal to zero
        for sim in by_order[4]:
            assert sim.responsive is False, sim.summary()
            assert sim.measured_scale_channel_per_dps == 0.0
            assert "quantisation" in sim.summary()
