"""Tests for the platform package: IP portfolio, generic platform, gyro co-sim.

The full co-simulation is expensive, so the heavyweight objects (a
started platform and a calibrated platform) are built once per test
session and shared.
"""

import numpy as np
import pytest

from repro.common import ConfigurationError, SimulationError
from repro.platform import (
    BASE_BLOCKS,
    Domain,
    GenericSensorPlatform,
    GyroPlatform,
    GyroPlatformConfig,
    GyroSimulationResult,
    IpBlock,
    IpPortfolio,
    PlatformInstance,
    TemperatureSensorConfig,
    default_portfolio,
)
from repro.sensors import Environment


class TestIpPortfolio:
    def test_default_portfolio_nonempty(self):
        portfolio = default_portfolio()
        assert len(portfolio) > 20

    def test_block_validation(self):
        with pytest.raises(ConfigurationError):
            IpBlock("bad", Domain.ANALOG, area_mm2=-1.0)

    def test_duplicate_rejected(self):
        portfolio = IpPortfolio()
        portfolio.add(IpBlock("x", Domain.ANALOG))
        with pytest.raises(ConfigurationError):
            portfolio.add(IpBlock("x", Domain.ANALOG))

    def test_lookup(self):
        portfolio = default_portfolio()
        assert "cpu_8051" in portfolio
        assert portfolio.get("cpu_8051").gates > 0
        with pytest.raises(ConfigurationError):
            portfolio.get("nonexistent")

    def test_by_domain(self):
        portfolio = default_portfolio()
        analog = portfolio.by_domain(Domain.ANALOG)
        assert analog and all(b.domain is Domain.ANALOG for b in analog)

    def test_for_sensor_class(self):
        portfolio = default_portfolio()
        gyro_blocks = portfolio.for_sensor_class("gyro")
        names = {b.name for b in gyro_blocks}
        assert "charge_amplifier" in names
        assert "bridge_excitation" not in names

    def test_totals(self):
        portfolio = default_portfolio()
        names = ["sar_adc_12b", "dac_12b"]
        assert portfolio.total_area_mm2(names) == pytest.approx(1.9)
        assert portfolio.total_gates(["cpu_8051"]) == 35000
        assert portfolio.total_power_mw(names) > 0


class TestGenericPlatform:
    def test_supported_classes(self):
        platform = GenericSensorPlatform()
        assert set(platform.supported_sensor_classes) == {
            "gyro", "capacitive", "resistive", "inductive"}

    def test_derive_gyro_includes_specific_blocks(self):
        platform = GenericSensorPlatform()
        instance = platform.derive("gyro")
        names = instance.block_names()
        assert "pll_loop_filter" in names
        assert "agc" in names
        assert "bridge_excitation" not in names
        for base in ("cpu_8051", "uart", "jtag_tap"):
            assert base in names

    def test_derive_unknown_class_rejected(self):
        with pytest.raises(ConfigurationError):
            GenericSensorPlatform().derive("optical")

    def test_derived_instance_costs_roll_up(self):
        platform = GenericSensorPlatform()
        instance = platform.derive("gyro")
        assert instance.analog_area_mm2 > 4.0
        assert 150_000 < instance.digital_gates < 250_000
        assert instance.code_bytes > 4000

    def test_pressure_instance_smaller_than_gyro(self):
        platform = GenericSensorPlatform()
        gyro = platform.derive("gyro")
        pressure = platform.derive("capacitive")
        assert pressure.digital_gates < gyro.digital_gates

    def test_unused_blocks_not_integrated(self):
        platform = GenericSensorPlatform()
        instance = platform.derive("capacitive")
        unused_names = {b.name for b in platform.unused_blocks(instance)}
        assert "pll_loop_filter" in unused_names
        assert not unused_names & set(instance.block_names())

    def test_extra_blocks(self):
        platform = GenericSensorPlatform()
        instance = platform.derive("capacitive", extra_blocks=("sram_controller",))
        assert "sram_controller" in instance.block_names()

    def test_architecture_report(self):
        platform = GenericSensorPlatform()
        report = platform.architecture_report(platform.derive("gyro"))
        assert "Analog front-end" in report
        assert "cpu_8051" in report
        assert "gates" in report

    def test_domain_partition_of_instance(self):
        instance = GenericSensorPlatform().derive("gyro")
        analog = instance.blocks_in_domain(Domain.ANALOG)
        software = instance.blocks_in_domain(Domain.SOFTWARE)
        assert analog and software


class TestSimulationResult:
    def _make(self, n=10):
        z = np.zeros(n)
        return GyroSimulationResult(
            time_s=np.linspace(0, 1, n), sample_rate_hz=float(n),
            true_rate_dps=z, temperature_c=z + 25.0,
            rate_output_dps=np.linspace(0, 10, n), rate_output_v=z + 2.5,
            amplitude_control=z, amplitude_error=z, phase_error=z,
            vco_control=z, pll_locked=np.array([False] * 3 + [True] * (n - 3)),
            running=np.array([False] * 5 + [True] * (n - 5)))

    def test_shape_validation(self):
        z = np.zeros(5)
        with pytest.raises(ConfigurationError):
            GyroSimulationResult(
                time_s=np.zeros(4), sample_rate_hz=1.0, true_rate_dps=z,
                temperature_c=z, rate_output_dps=z, rate_output_v=z,
                amplitude_control=z, amplitude_error=z, phase_error=z,
                vco_control=z, pll_locked=z.astype(bool), running=z.astype(bool))

    def test_duration_and_means(self):
        result = self._make()
        assert result.duration_s == pytest.approx(1.0)
        assert result.mean_output_v() == pytest.approx(2.5)
        assert result.mean_output_dps(fraction=1.0) == pytest.approx(5.0)

    def test_lock_time(self):
        result = self._make()
        assert result.lock_time_s() == pytest.approx(result.time_s[3])

    def test_settled_slice_validation(self):
        result = self._make()
        with pytest.raises(ConfigurationError):
            result.settled_slice(0.0)

    def test_summary_keys(self):
        summary = self._make().summary()
        assert {"duration_s", "final_rate_dps", "locked"} <= set(summary)


# ---------------------------------------------------------------------------
# Full co-simulation (session-scoped fixtures keep the cost manageable)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="session")
def started_platform():
    platform = GyroPlatform()
    result = platform.start()
    return platform, result


@pytest.fixture(scope="session")
def calibrated_platform():
    platform = GyroPlatform()
    platform.calibrate(settle_s=0.2)
    return platform


class TestGyroPlatform:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            GyroPlatformConfig(sample_rate_hz=0.0)
        with pytest.raises(ConfigurationError):
            GyroPlatformConfig(record_decimation=0)
        with pytest.raises(ConfigurationError):
            TemperatureSensorConfig(resolution_c=0.0)

    def test_run_rejects_bad_duration(self):
        platform = GyroPlatform()
        with pytest.raises(SimulationError):
            platform.run(Environment.still(), 0.0)

    def test_startup_locks_and_completes(self, started_platform):
        platform, result = started_platform
        assert platform.conditioner.running
        assert result.pll_locked[-1]
        assert result.turn_on_time_s is not None
        # Table 1 shape: turn-on takes hundreds of milliseconds
        assert 0.2 < result.turn_on_time_s < 1.0

    def test_startup_amplitude_on_target(self, started_platform):
        platform, _ = started_platform
        target = platform.conditioner.config.drive.agc.target_amplitude
        assert platform.conditioner.drive_loop.pll.amplitude_estimate == pytest.approx(
            target, rel=0.1)

    def test_pll_frequency_near_resonance(self, started_platform):
        platform, _ = started_platform
        assert platform.conditioner.drive_loop.pll.frequency_hz == pytest.approx(
            platform.config.sensor.primary_resonance_hz, abs=20.0)

    def test_traces_recorded(self, started_platform):
        _, result = started_platform
        assert result.time_s.size > 100
        assert result.amplitude_control.size == result.time_s.size
        assert np.all(np.diff(result.time_s) > 0)

    def test_calibrated_zero_rate_output(self, calibrated_platform):
        _, dps, volts = calibrated_platform.measure_settled_output(0.0, 25.0,
                                                                   duration_s=0.15)
        assert abs(dps) < 5.0
        assert volts == pytest.approx(2.5, abs=0.05)

    def test_calibrated_positive_rate(self, calibrated_platform):
        _, dps, volts = calibrated_platform.measure_settled_output(100.0, 25.0,
                                                                   duration_s=0.2)
        assert dps == pytest.approx(100.0, rel=0.05)
        assert volts > 2.9

    def test_calibrated_negative_rate(self, calibrated_platform):
        _, dps, volts = calibrated_platform.measure_settled_output(-100.0, 25.0,
                                                                   duration_s=0.2)
        assert dps == pytest.approx(-100.0, rel=0.05)
        assert volts < 2.1

    def test_analog_sensitivity_close_to_5mv(self, calibrated_platform):
        _, _, v_pos = calibrated_platform.measure_settled_output(200.0, 25.0,
                                                                 duration_s=0.2)
        _, _, v_neg = calibrated_platform.measure_settled_output(-200.0, 25.0,
                                                                 duration_s=0.2)
        sensitivity = (v_pos - v_neg) / 400.0
        assert sensitivity == pytest.approx(0.005, rel=0.1)

    def test_temperature_calibration_requires_scale_first(self):
        platform = GyroPlatform()
        with pytest.raises(SimulationError):
            platform.calibrate_temperature()

    def test_waveform_recording(self):
        platform = GyroPlatform()
        result = platform.run(Environment.still(), 0.01, reset=True,
                              record_waveforms=True)
        assert result.primary_pickoff_norm is not None
        assert result.drive_word is not None
        assert result.primary_pickoff_norm.size == result.time_s.size

    def test_dsp_status_register_visible_after_start(self, started_platform):
        platform, _ = started_platform
        status = platform.conditioner.registers.register("dsp_status")
        assert status.read_field("pll_locked") == 1
        assert status.read_field("running") == 1
