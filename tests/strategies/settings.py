"""Standardised Hypothesis settings profiles for property tests.

One place to tune how hard the property tests work, instead of ad-hoc
``max_examples`` numbers scattered through the suite:

* ``DETERMINISM_SETTINGS`` — cheap, pure-arithmetic properties
  (round-trips, congruences) where examples are nearly free.
* ``STANDARD_SETTINGS`` — the default for ordinary properties.
* ``SLOW_SETTINGS`` — properties that build objects or small arrays.
* ``QUICK_SETTINGS`` — properties wrapping expensive simulation steps.

``deadline=None`` everywhere: the suite runs under load in CI and a
per-example wall-clock deadline only produces flaky failures.
"""

from hypothesis import settings

DETERMINISM_SETTINGS = settings(max_examples=500, deadline=None)
STANDARD_SETTINGS = settings(max_examples=100, deadline=None)
SLOW_SETTINGS = settings(max_examples=50, deadline=None)
QUICK_SETTINGS = settings(max_examples=20, deadline=None)
