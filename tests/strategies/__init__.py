"""Shared Hypothesis strategies and settings profiles for the test suite."""
