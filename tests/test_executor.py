"""Tests for the campaign executor layer (``repro.scenarios.executor``).

The sharded executor promises that fanning a campaign's lanes out over
worker processes changes *where* the simulation runs and nothing else:
the assembled :class:`CampaignResult` — traces, metrics, programmed
calibration words and the behaviour of the returned lane platforms — is
bit-identical to the in-process local executor.  These tests hold it to
that, exercise the batch manifest's verify-and-retry / resume machinery
with injected faults, and cover the executor registry, the unified
``GyroPlatform.run`` signature (and its ``run_batch`` deprecation shim)
and the result serialisation round-trips the shard files rely on.
"""

import copy
import dataclasses
import os
import pickle

import numpy as np
import pytest

from repro.common import ConfigurationError, SimulationError
from repro.platform import GyroPlatform, GyroPlatformConfig
from repro.faults import AfeSaturation
from repro.scenarios import (
    Campaign,
    CampaignManifest,
    CampaignResult,
    ManifestCorruptionError,
    Scenario,
    ShardRecord,
    executor_names,
    get_executor,
    rate_table_scenarios,
    register_executor,
    settled_output_scenario,
    startup_scenario,
    validate_executor,
)
from repro.scenarios.executor import ExecutorSpec
from repro.scenarios.manifest import (
    SHARD_DONE,
    SHARD_FAILED,
    write_shard_payload,
)
from repro.sensors import Environment

TRACE_FIELDS = (
    "time_s", "true_rate_dps", "temperature_c", "rate_output_dps",
    "rate_output_v", "amplitude_control", "amplitude_error", "phase_error",
    "vco_control", "pll_locked", "running")


def assert_outcomes_identical(a, b):
    """Bit-identical traces, metrics and bookkeeping for two outcomes."""
    assert a.metrics == b.metrics
    assert a.stopped_early == b.stopped_early
    assert a.elapsed_s == b.elapsed_s
    for field in TRACE_FIELDS:
        assert np.array_equal(getattr(a.result, field),
                              getattr(b.result, field)), field


def assert_campaigns_identical(a: CampaignResult, b: CampaignResult):
    assert len(a.lanes) == len(b.lanes)
    for lane_a, lane_b in zip(a.lanes, b.lanes):
        assert len(lane_a.outcomes) == len(lane_b.outcomes)
        for oa, ob in zip(lane_a.outcomes, lane_b.outcomes):
            assert_outcomes_identical(oa, ob)


@pytest.fixture(scope="module")
def started_platform():
    platform = GyroPlatform()
    platform.start()
    return platform


# ---------------------------------------------------------------------------
# executor registry
# ---------------------------------------------------------------------------

class TestExecutorRegistry:
    def test_builtin_executors_registered(self):
        assert set(executor_names()) >= {"local", "sharded"}

    def test_get_executor_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown executor"):
            get_executor("cluster")

    def test_validate_executor_passthrough(self):
        assert validate_executor("local") == "local"
        with pytest.raises(ConfigurationError):
            validate_executor("nope")

    def test_duplicate_registration_rejected(self):
        spec = get_executor("local")
        with pytest.raises(ConfigurationError, match="already registered"):
            register_executor(ExecutorSpec("local", parallel=False,
                                           description="dup",
                                           runner=spec.runner))

    def test_campaign_run_rejects_unknown_executor(self, started_platform):
        camp = Campaign([settled_output_scenario(0.0, settle_s=0.01)])
        with pytest.raises(ConfigurationError, match="unknown executor"):
            camp.run(copy.deepcopy(started_platform), executor="cluster")

    def test_local_executor_rejects_workers(self, started_platform):
        camp = Campaign([settled_output_scenario(0.0, settle_s=0.01)])
        with pytest.raises(ConfigurationError, match="in-process"):
            camp.run(copy.deepcopy(started_platform), executor="local",
                     workers=2)


# ---------------------------------------------------------------------------
# batch manifest (pure unit tests, no simulation)
# ---------------------------------------------------------------------------

def make_shards():
    return [ShardRecord(shard_id=0, lane_indices=[0, 1],
                        digests=[["aa"], ["bb"]]),
            ShardRecord(shard_id=1, lane_indices=[2],
                        digests=[["cc", "dd"]])]


class TestManifest:
    def test_shard_record_dict_round_trip(self):
        record = ShardRecord(shard_id=3, lane_indices=[4, 5],
                             digests=[["x"], ["y"]], status=SHARD_FAILED,
                             attempts=2, error="boom")
        clone = ShardRecord.from_dict(record.to_dict())
        assert clone == record

    def test_write_load_round_trip(self, tmp_path):
        manifest = CampaignManifest(str(tmp_path), "camp", "batched",
                                    "f00d", make_shards())
        manifest.write()
        loaded = CampaignManifest.load(str(tmp_path))
        assert loaded.campaign_name == "camp"
        assert loaded.engine == "batched"
        assert loaded.source_digest == "f00d"
        assert loaded.shards == manifest.shards

    def test_load_rejects_missing_and_bad_version(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            CampaignManifest.load(str(tmp_path))
        manifest = CampaignManifest(str(tmp_path), "camp", "batched",
                                    "f00d", make_shards())
        manifest.write()
        import json
        data = json.load(open(manifest.path))
        data["version"] = 99
        json.dump(data, open(manifest.path, "w"))
        with pytest.raises(ConfigurationError, match="version"):
            CampaignManifest.load(str(tmp_path))

    def test_create_or_resume_keeps_statuses(self, tmp_path):
        first = CampaignManifest.create_or_resume(
            str(tmp_path), "camp", "batched", "f00d", make_shards())
        first.shards[0].status = SHARD_DONE
        first.shards[0].attempts = 1
        first.write()
        resumed = CampaignManifest.create_or_resume(
            str(tmp_path), "camp", "batched", "f00d", make_shards())
        assert resumed.shards[0].status == SHARD_DONE
        assert resumed.shards[0].attempts == 1
        assert resumed.shards[1].status != SHARD_DONE

    @pytest.mark.parametrize("kwargs,match", [
        (dict(campaign_name="other"), "campaign name"),
        (dict(engine="fused"), "engine"),
        (dict(source_digest="beef"), "lane source"),
    ])
    def test_create_or_resume_rejects_mismatch(self, tmp_path, kwargs, match):
        CampaignManifest.create_or_resume(str(tmp_path), "camp", "batched",
                                          "f00d", make_shards())
        fields = dict(campaign_name="camp", engine="batched",
                      source_digest="f00d")
        fields.update(kwargs)
        with pytest.raises(ConfigurationError, match=match):
            CampaignManifest.create_or_resume(
                str(tmp_path), fields["campaign_name"], fields["engine"],
                fields["source_digest"], make_shards())

    def test_create_or_resume_rejects_different_partition(self, tmp_path):
        CampaignManifest.create_or_resume(str(tmp_path), "camp", "batched",
                                          "f00d", make_shards())
        shards = make_shards()
        shards[1].digests = [["ee", "dd"]]
        with pytest.raises(ConfigurationError, match="different lanes"):
            CampaignManifest.create_or_resume(str(tmp_path), "camp",
                                              "batched", "f00d", shards)

    def test_load_shard_result_verifies_identity(self, tmp_path):
        manifest = CampaignManifest(str(tmp_path), "camp", "batched",
                                    "f00d", make_shards())
        record = manifest.shards[0]
        # missing file
        assert manifest.load_shard_result(record) is None
        # wrong digests
        write_shard_payload(manifest.shard_result_path(0), {
            "shard_id": 0, "lane_indices": [0, 1],
            "digests": [["zz"], ["bb"]], "outcomes": []})
        assert manifest.load_shard_result(record) is None
        # corrupt pickle
        with open(manifest.shard_result_path(0), "wb") as fh:
            fh.write(b"not a pickle")
        assert manifest.load_shard_result(record) is None
        # valid payload
        write_shard_payload(manifest.shard_result_path(0), {
            "shard_id": 0, "lane_indices": [0, 1],
            "digests": [["aa"], ["bb"]], "outcomes": ["ok"]})
        payload = manifest.load_shard_result(record)
        assert payload["outcomes"] == ["ok"]

    def test_counts_and_unfinished(self):
        manifest = CampaignManifest("/nonexistent", "camp", "batched",
                                    "f00d", make_shards())
        manifest.shards[0].status = SHARD_DONE
        assert manifest.counts()[SHARD_DONE] == 1
        assert [s.shard_id for s in manifest.unfinished()] == [1]

    def test_load_corrupt_manifest_raises_corruption_error(self, tmp_path):
        manifest = CampaignManifest(str(tmp_path), "camp", "batched",
                                    "f00d", make_shards())
        manifest.write()
        # truncation (a crash mid-write of a non-atomic editor, or a
        # hand-mangled file) is corruption, not a campaign mismatch
        size = os.path.getsize(manifest.path)
        with open(manifest.path, "r+") as fh:
            fh.truncate(size // 2)
        with pytest.raises(ManifestCorruptionError):
            CampaignManifest.load(str(tmp_path))
        # and corruption IS a ConfigurationError, so existing callers
        # that catch the broad class keep working
        assert issubclass(ManifestCorruptionError, ConfigurationError)

    def test_malformed_fields_are_corruption(self, tmp_path):
        manifest = CampaignManifest(str(tmp_path), "camp", "batched",
                                    "f00d", make_shards())
        manifest.write()
        import json
        data = json.load(open(manifest.path))
        del data["shards"][0]["lane_indices"]
        json.dump(data, open(manifest.path, "w"))
        with pytest.raises(ManifestCorruptionError, match="malformed"):
            CampaignManifest.load(str(tmp_path))

    def test_create_or_resume_salvages_corrupt_manifest(self, tmp_path):
        first = CampaignManifest.create_or_resume(
            str(tmp_path), "camp", "batched", "f00d", make_shards())
        first.shards[0].status = SHARD_DONE
        first.write()
        with open(first.path, "w") as fh:
            fh.write('{"version": 1, "campaign_na')
        with pytest.warns(RuntimeWarning, match="corrupt"):
            rebuilt = CampaignManifest.create_or_resume(
                str(tmp_path), "camp", "batched", "f00d", make_shards())
        # the damaged file is moved aside, never deleted
        assert os.path.exists(first.path + ".corrupt-0")
        # the rebuilt manifest starts from the requested shard set;
        # completed shard RESULT files are credited by the run loop
        assert all(s.status != SHARD_DONE for s in rebuilt.shards)
        assert CampaignManifest.load(str(tmp_path)).campaign_name == "camp"


# ---------------------------------------------------------------------------
# scenario digests
# ---------------------------------------------------------------------------

class TestScenarioDigest:
    def test_digest_is_stable_and_content_sensitive(self):
        a = settled_output_scenario(50.0, settle_s=0.1)
        same = settled_output_scenario(50.0, settle_s=0.1)
        other = settled_output_scenario(60.0, settle_s=0.1)
        assert a.digest() == same.digest()
        assert a.digest() != other.digest()

    def test_digest_sees_extractor_parameters(self):
        a = settled_output_scenario(50.0, settle_s=0.1, settle_fraction=0.4)
        b = settled_output_scenario(50.0, settle_s=0.1, settle_fraction=0.5)
        assert a.digest() != b.digest()


# ---------------------------------------------------------------------------
# result serialisation (what the shard files carry)
# ---------------------------------------------------------------------------

class TestSerialisation:
    def test_simulation_result_dict_round_trip(self):
        platform = GyroPlatform()
        result = platform.run(Environment.still(), 0.01)
        clone = type(result).from_dict(result.to_dict())
        for field in TRACE_FIELDS:
            assert np.array_equal(getattr(result, field),
                                  getattr(clone, field)), field
        assert clone.sample_rate_hz == result.sample_rate_hz
        assert clone.turn_on_time_s == result.turn_on_time_s

    def test_campaign_result_dict_round_trip(self, started_platform):
        camp = Campaign(rate_table_scenarios([0.0, 50.0], settle_s=0.02))
        result = camp.run(copy.deepcopy(started_platform))
        clone = CampaignResult.from_dict(result.to_dict())
        assert len(clone.lanes) == len(result.lanes)
        for lane, lane_clone in zip(result.lanes, clone.lanes):
            assert lane_clone.platform is None
            for o, oc in zip(lane.outcomes, lane_clone.outcomes):
                assert oc.metrics == o.metrics
                assert oc.scenario.name == o.scenario.name
                for field in TRACE_FIELDS:
                    assert np.array_equal(getattr(o.result, field),
                                          getattr(oc.result, field))

    def test_campaign_result_pickle_round_trip(self, started_platform):
        camp = Campaign(rate_table_scenarios([0.0], settle_s=0.02))
        result = camp.run(copy.deepcopy(started_platform))
        clone = pickle.loads(pickle.dumps(result))
        assert_campaigns_identical(result, clone)
        # the lane platform travels too, bit-identically: replaying the
        # same scenario on both continues the simulation identically
        follow = Campaign([settled_output_scenario(10.0, settle_s=0.02)])
        a = follow.run(result.lanes[0].platform, mutate=True)
        b = follow.run(clone.lanes[0].platform, mutate=True)
        assert_campaigns_identical(a, b)

    def test_faulted_partial_result_round_trip_is_lossless(
            self, started_platform, tmp_path):
        # the result store serialises lane outcomes through to_dict and
        # trusts from_dict(d).to_dict() == d bit for bit; lock that for
        # the hardest case — a faulted scenario that latches safe mode
        # (optional safety scalars populated) inside a PARTIAL sharded
        # result carrying a failure report
        latch = Scenario(name="latch",
                         environment=Environment.constant_rate(80.0),
                         duration_s=0.03,
                         faults=(AfeSaturation(t_start=0.01, t_stop=0.02),))
        camp = Campaign([latch,
                         settled_output_scenario(10.0, settle_s=0.02)],
                        name="lossless")
        partial = camp.run(copy.deepcopy(started_platform), workers=2,
                           shard_size=1, manifest_dir=str(tmp_path),
                           max_retries=0, fault_hook=FailShard(1))
        assert not partial.complete and partial.lanes[1] is None

        data = partial.to_dict()
        # the safety fields actually travelled
        result_dict = data["lanes"][0]["outcomes"][0]["result"]
        assert result_dict["safe_mode"] is True
        assert result_dict["safe_mode_events"] == 1
        assert result_dict["safe_mode_entry_s"] is not None
        assert data["failed_shards"] == partial.failed_shards
        # and the round trip is lossless, digests included
        clone = CampaignResult.from_dict(data)
        assert clone.to_dict() == data
        assert (clone.lanes[0].outcomes[0].digest()
                == partial.lanes[0].outcomes[0].digest())

    def test_library_scenarios_are_picklable(self):
        scenarios = [startup_scenario(),
                     settled_output_scenario(50.0, settle_s=0.1),
                     *rate_table_scenarios([0.0, 10.0], settle_s=0.1)]
        clones = pickle.loads(pickle.dumps(scenarios))
        for original, clone in zip(scenarios, clones):
            assert clone.digest() == original.digest()


# ---------------------------------------------------------------------------
# unified GyroPlatform.run API + deprecation shims
# ---------------------------------------------------------------------------

class TestUnifiedRunApi:
    def test_run_accepts_environment_sequence(self):
        platform = GyroPlatform()
        envs = [Environment.still(),
                Environment.constant_rate(30.0)]
        results = platform.run(envs, 0.02)
        singles = [GyroPlatform().run(env, 0.02) for env in envs]
        assert isinstance(results, list) and len(results) == 2
        for got, want in zip(results, singles):
            for field in TRACE_FIELDS:
                assert np.array_equal(getattr(got, field),
                                      getattr(want, field)), field

    def test_run_batch_shim_warns_and_matches(self):
        platform = GyroPlatform()
        envs = [Environment.still(), Environment.constant_rate(20.0)]
        with pytest.warns(DeprecationWarning, match="run_batch"):
            old = platform.run_batch(envs, 0.02)
        new = platform.run(envs, 0.02)
        for a, b in zip(old, new):
            for field in TRACE_FIELDS:
                assert np.array_equal(getattr(a, field), getattr(b, field))

    def test_run_sequence_with_workers_matches_local(self):
        envs = [Environment.still(), Environment.constant_rate(40.0)]
        local = GyroPlatform().run(envs, 0.02)
        sharded = GyroPlatform().run(envs, 0.02, workers=2)
        for a, b in zip(local, sharded):
            for field in TRACE_FIELDS:
                assert np.array_equal(getattr(a, field), getattr(b, field))

    def test_single_environment_rejects_workers(self):
        with pytest.raises(ConfigurationError, match="single environment"):
            GyroPlatform().run(Environment.still(), 0.01, workers=2)

    def test_fleet_rejects_sharded(self):
        platform = GyroPlatform()
        fleet = platform.make_fleet(2)
        envs = [Environment.still()] * 2
        with pytest.raises(ConfigurationError, match="fleet"):
            platform.run(envs, 0.01, workers=2, fleet=fleet)

    def test_empty_sequence_rejected(self):
        with pytest.raises(ConfigurationError, match="must not be empty"):
            GyroPlatform().run([], 0.01)


# ---------------------------------------------------------------------------
# sharded == local equivalence (the tentpole lock)
# ---------------------------------------------------------------------------

class TestShardedEquivalence:
    def test_rate_table_campaign_bit_identical(self, started_platform,
                                               tmp_path):
        camp = Campaign(rate_table_scenarios([-50.0, 0.0, 50.0],
                                             settle_s=0.05),
                        name="rate-table")
        local = camp.run(copy.deepcopy(started_platform))
        sharded = camp.run(copy.deepcopy(started_platform), workers=2,
                           manifest_dir=str(tmp_path))
        assert_campaigns_identical(local, sharded)

        manifest = CampaignManifest.load(str(tmp_path))
        assert [s.status for s in manifest.shards] == [SHARD_DONE] * 2
        assert sorted(i for s in manifest.shards
                      for i in s.lane_indices) == [0, 1, 2]

        # the returned lane platforms behave bit-identically too
        follow = Campaign([settled_output_scenario(25.0, settle_s=0.02)])
        for lane_l, lane_s in zip(local.lanes, sharded.lanes):
            a = follow.run(lane_l.platform, mutate=True)
            b = follow.run(lane_s.platform, mutate=True)
            assert_campaigns_identical(a, b)

    def test_multi_scenario_programs_bit_identical(self, started_platform):
        # two scenarios per lane: rollover boundaries must agree across
        # executors even when lanes are split into different shards
        programs = [[settled_output_scenario(0.0, settle_s=0.04),
                     settled_output_scenario(30.0, settle_s=0.02)],
                    [settled_output_scenario(-30.0, settle_s=0.03),
                     settled_output_scenario(10.0, settle_s=0.03)]]
        camp = Campaign(programs, name="programs")
        local = camp.run(copy.deepcopy(started_platform))
        sharded = camp.run(copy.deepcopy(started_platform), workers=2)
        assert_campaigns_identical(local, sharded)

    def test_calibration_programs_identical_words(self):
        local = GyroPlatform()
        local.calibrate(rates_dps=(-100.0, 0.0, 100.0), settle_s=0.1)
        sharded = GyroPlatform()
        sharded.calibrate(rates_dps=(-100.0, 0.0, 100.0), settle_s=0.1,
                          executor="sharded", workers=2)
        chain_l = local.conditioner.sense_chain
        chain_s = sharded.conditioner.sense_chain
        assert (chain_s.scaler.config.scale_dps_per_unit
                == chain_l.scaler.config.scale_dps_per_unit)
        assert chain_s.offset_comp.offset == chain_l.offset_comp.offset
        assert sharded.calibrated

    def test_sharded_rejects_mutate(self, started_platform):
        camp = Campaign([settled_output_scenario(0.0, settle_s=0.01)])
        with pytest.raises(ConfigurationError, match="mutate"):
            camp.run(copy.deepcopy(started_platform), mutate=True,
                     executor="sharded")

    def test_sharded_rejects_unpicklable_scenarios(self, started_platform):
        scenario = Scenario(name="lambda", environment=Environment.still(),
                            duration_s=0.01,
                            extractors={"x": lambda p, r: 0.0})
        camp = Campaign([scenario])
        with pytest.raises(ConfigurationError, match="picklable"):
            camp.run(copy.deepcopy(started_platform), workers=2)


# ---------------------------------------------------------------------------
# fault injection, retry and resume
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class FailFirstAttempt:
    """Picklable fault hook: every shard's first attempt dies."""

    def __call__(self, shard_id: int, attempt: int) -> None:
        if attempt == 1:
            raise RuntimeError(f"injected fault on shard {shard_id}")


@dataclasses.dataclass(frozen=True)
class FailShard:
    """Picklable fault hook: one shard fails on every attempt."""

    shard_id: int

    def __call__(self, shard_id: int, attempt: int) -> None:
        if shard_id == self.shard_id:
            raise RuntimeError("injected persistent fault")


@dataclasses.dataclass(frozen=True)
class FailAlways:
    """Picklable fault hook: any shard that actually launches dies."""

    def __call__(self, shard_id: int, attempt: int) -> None:
        raise RuntimeError(f"shard {shard_id} should not have run")


class TestFaultInjectionAndResume:
    def test_failed_shards_retry_and_recover(self, started_platform,
                                             tmp_path):
        camp = Campaign(rate_table_scenarios([0.0, 40.0], settle_s=0.04),
                        name="retry")
        local = camp.run(copy.deepcopy(started_platform))
        sharded = camp.run(copy.deepcopy(started_platform), workers=2,
                           manifest_dir=str(tmp_path),
                           fault_hook=FailFirstAttempt())
        assert_campaigns_identical(local, sharded)
        manifest = CampaignManifest.load(str(tmp_path))
        assert all(s.status == SHARD_DONE for s in manifest.shards)
        assert all(s.attempts == 2 for s in manifest.shards)

    def test_exhausted_retries_quarantine_into_partial_result(
            self, started_platform, tmp_path):
        camp = Campaign(rate_table_scenarios([0.0, 40.0], settle_s=0.04),
                        name="resume")
        partial = camp.run(copy.deepcopy(started_platform), workers=2,
                           manifest_dir=str(tmp_path), max_retries=1,
                           retry_backoff_s=0.01,
                           fault_hook=FailShard(1))

        # the poisoned shard is quarantined, not fatal: the campaign
        # completes with the healthy shard's results and an explicit
        # failure report
        assert not partial.complete
        assert partial.failed_lane_indices() == [1]
        assert partial.lanes[0] is not None and partial.lanes[1] is None
        assert len(partial.failed_shards) == 1
        report = partial.failed_shards[0]
        assert report["shard_id"] == 1
        assert report["lane_indices"] == [1]
        assert report["attempts"] == 2
        assert "injected persistent fault" in report["error"]
        assert len(partial.outcomes()) == 1    # healthy lane only

        # the partial result serialises, failure report included
        restored = CampaignResult.from_dict(partial.to_dict())
        assert restored.failed_shards == partial.failed_shards
        assert restored.lanes[1] is None

        manifest = CampaignManifest.load(str(tmp_path))
        assert manifest.shards[0].status == SHARD_DONE
        assert manifest.shards[1].status == SHARD_FAILED
        assert "injected persistent fault" in manifest.shards[1].error
        assert manifest.retry == {"max_attempts": 2, "backoff_s": 0.01,
                                  "backoff_factor": 2.0,
                                  "max_backoff_s": 30.0,
                                  "deadline_s": None}
        assert os.path.exists(manifest.shard_result_path(0))
        attempts_before = manifest.shards[0].attempts

        # resume without the fault: only the failed shard re-runs, and
        # the assembled result matches the all-local run bit for bit
        resumed = camp.run(copy.deepcopy(started_platform), workers=2,
                           manifest_dir=str(tmp_path))
        assert resumed.complete and not resumed.failed_shards
        local = camp.run(copy.deepcopy(started_platform))
        assert_campaigns_identical(local, resumed)
        manifest = CampaignManifest.load(str(tmp_path))
        assert all(s.status == SHARD_DONE for s in manifest.shards)
        assert manifest.shards[0].attempts == attempts_before

    def test_corrupt_manifest_rebuilds_from_shard_files(
            self, started_platform, tmp_path):
        # a truncated manifest.json must not kill the resume OR throw
        # away completed work: the manifest is rebuilt and the
        # surviving shard-NNNN.pkl files are digest-verified and
        # credited without re-simulation — proven by a fault hook that
        # kills any shard that actually launches
        camp = Campaign(rate_table_scenarios([0.0, 40.0], settle_s=0.04),
                        name="rebuild")
        first = camp.run(copy.deepcopy(started_platform), workers=2,
                         manifest_dir=str(tmp_path))
        manifest_path = os.path.join(str(tmp_path), "manifest.json")
        with open(manifest_path, "w") as fh:
            fh.write('{"version": 1, "campaign_na')

        with pytest.warns(RuntimeWarning, match="corrupt"):
            resumed = camp.run(copy.deepcopy(started_platform), workers=2,
                               manifest_dir=str(tmp_path),
                               fault_hook=FailAlways())
        assert resumed.complete
        assert_campaigns_identical(first, resumed)
        assert os.path.exists(manifest_path + ".corrupt-0")
        manifest = CampaignManifest.load(str(tmp_path))
        assert all(s.status == SHARD_DONE for s in manifest.shards)

    def test_resume_rejects_different_campaign(self, started_platform,
                                               tmp_path):
        camp = Campaign(rate_table_scenarios([0.0, 40.0], settle_s=0.04),
                        name="original")
        camp.run(copy.deepcopy(started_platform), workers=2,
                 manifest_dir=str(tmp_path))
        other = Campaign(rate_table_scenarios([0.0, 40.0], settle_s=0.04),
                         name="imposter")
        with pytest.raises(ConfigurationError, match="different campaign"):
            other.run(copy.deepcopy(started_platform), workers=2,
                      manifest_dir=str(tmp_path))

    def test_shard_size_controls_partition(self, started_platform,
                                           tmp_path):
        camp = Campaign(rate_table_scenarios([-40.0, 0.0, 40.0],
                                             settle_s=0.03),
                        name="partition")
        local = camp.run(copy.deepcopy(started_platform))
        sharded = camp.run(copy.deepcopy(started_platform), workers=2,
                           shard_size=1, manifest_dir=str(tmp_path))
        assert_campaigns_identical(local, sharded)
        manifest = CampaignManifest.load(str(tmp_path))
        assert len(manifest.shards) == 3
        assert [s.lane_indices for s in manifest.shards] == [[0], [1], [2]]
