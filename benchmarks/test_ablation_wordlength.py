"""Ablation — DSP word length vs rate-noise floor and digital size.

One of the refinement decisions the design flow makes when moving from
the MATLAB model to RTL is the datapath word length.  This bench sweeps
it with the DSE cost/noise models and shows the knee the platform's
16-bit choice sits on: shorter words raise the quantisation-induced
noise floor, longer words only cost gates.
"""

import pytest

from repro.flow import DesignPoint, evaluate_point


def _sweep():
    word_lengths = (10, 12, 14, 16, 20, 24)
    return [(w, evaluate_point(DesignPoint(adc_bits=12, dsp_word_length=w,
                                           output_filter_order=4,
                                           output_bandwidth_hz=50.0)))
            for w in word_lengths]


def test_ablation_dsp_word_length(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    print("\n=== Ablation: DSP word length ===")
    for word, point in results:
        print(f"  {word:2d} bits: noise {point.noise_density_dps_rthz:.4f} deg/s/rtHz, "
              f"{point.digital_gates} gates")

    by_word = dict(results)
    # noise is monotonically non-increasing with word length
    noises = [point.noise_density_dps_rthz for _, point in results]
    assert all(a >= b - 1e-12 for a, b in zip(noises, noises[1:]))
    # gates are monotonically increasing with word length
    gates = [point.digital_gates for _, point in results]
    assert all(a < b for a, b in zip(gates, gates[1:]))
    # 16 bits already sits within 5 % of the asymptotic (24-bit) noise floor —
    # the knee that justifies the platform's choice
    assert by_word[16].noise_density_dps_rthz <= 1.05 * by_word[24].noise_density_dps_rthz
    # while 10 bits is measurably worse
    assert by_word[10].noise_density_dps_rthz > by_word[24].noise_density_dps_rthz
