"""Table 2 — Analog Devices ADXRS300 baseline.

Characterises the ADXRS300 behavioural model (parameterised from the
paper's Table 2) with the same metric harness used for the platform, and
checks the measured figures land on the published values.
"""

import pytest

from repro.eval import (
    BaselineGyroDevice,
    adxrs300_spec,
    characterize_baseline,
    paper_table2_adxrs300,
)


def _characterize():
    device = BaselineGyroDevice(adxrs300_spec(), seed=11)
    return characterize_baseline(device, noise_duration_s=6.0, settle_s=0.5)


def test_table2_adxrs300_baseline(benchmark):
    measured = benchmark.pedantic(_characterize, rounds=1, iterations=1)

    paper = paper_table2_adxrs300()
    print("\n=== Table 2: Analog Devices ADXRS300 ===")
    print("paper (published):")
    print(paper.format_table())
    print("\nmeasured (behavioural model):")
    print(measured.to_datasheet().format_table())

    assert measured.sensitivity_mv_per_dps == pytest.approx(5.0, rel=0.08)
    assert measured.null_v == pytest.approx(2.5, abs=0.1)
    assert measured.noise_density_dps_rthz == pytest.approx(0.1, rel=0.5)
    assert measured.turn_on_time_ms == pytest.approx(35.0, rel=0.01)
    assert measured.bandwidth_hz == pytest.approx(40.0, rel=0.01)
    assert measured.dynamic_range_dps == pytest.approx(300.0)
