"""Tables 1–3 combined — the paper's "outperforms the competitors" claim.

Measures the simulated platform and both baseline models with the same
harness, builds the comparison report and asserts the qualitative shape
of the paper's conclusion: the platform implementation wins on rate
noise and bandwidth, loses on turn-on time, and matches the ADXRS300's
5 mV/°/s sensitivity class.
"""

import pytest

from repro.eval import (
    BaselineGyroDevice,
    CharacterizationConfig,
    GyroCharacterization,
    adxrs300_spec,
    characterize_baseline,
    compare_devices,
    murata_gyrostar_spec,
    paper_shape_checks,
)


def _build_report(platform):
    config = CharacterizationConfig(
        rate_points_dps=(-300.0, -150.0, 0.0, 150.0, 300.0),
        settle_s=0.15, noise_duration_s=1.2)
    harness = GyroCharacterization(platform, config)
    ours = harness.characterize(include_noise=True, include_temperature=False,
                                bandwidth_method="analytic")
    adxrs = characterize_baseline(BaselineGyroDevice(adxrs300_spec(), seed=21),
                                  noise_duration_s=5.0, settle_s=0.4)
    murata = characterize_baseline(BaselineGyroDevice(murata_gyrostar_spec(), seed=22),
                                   noise_duration_s=4.0, settle_s=0.4)
    return compare_devices([ours, adxrs, murata])


def test_comparison_outperforms_commercial_devices(benchmark, calibrated_platform):
    report = benchmark.pedantic(_build_report, args=(calibrated_platform,),
                                rounds=1, iterations=1)

    print("\n=== Tables 1-3 combined: device comparison ===")
    print(report.format_table())
    checks = paper_shape_checks(report)
    for name, passed in checks.items():
        print(f"  {name:<32s}: {'OK' if passed else 'MISMATCH'}")

    # the paper's qualitative conclusions
    assert checks["noise_beats_adxrs300"]
    assert checks["bandwidth_beats_baselines"]
    assert checks["turn_on_slower_than_adxrs300"]
    assert checks["sensitivity_matches_5mv"]
