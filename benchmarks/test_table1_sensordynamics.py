"""Table 1 — datasheet performance of the SensorDynamics implementation.

Regenerates the paper's Table 1 by characterising the calibrated
simulated platform: sensitivity (initial and over temperature),
nonlinearity, null, turn-on time, rate-noise density and bandwidth.
Absolute matching is not expected (the substrate is a simulator), but
the measured values must land in the same bands the paper reports.
"""

import pytest

from repro.eval import (
    CharacterizationConfig,
    GyroCharacterization,
    paper_table1_sensordynamics,
)


def _characterize(platform):
    config = CharacterizationConfig(
        rate_points_dps=(-300.0, -200.0, -100.0, 0.0, 100.0, 200.0, 300.0),
        settle_s=0.15,
        noise_duration_s=1.2,
        temperatures_c=(-40.0, 85.0),
    )
    harness = GyroCharacterization(platform, config)
    return harness.characterize(include_noise=True, include_temperature=True,
                                bandwidth_method="analytic")


def test_table1_sensordynamics_performance(benchmark, calibrated_platform):
    measured = benchmark.pedantic(_characterize, args=(calibrated_platform,),
                                  rounds=1, iterations=1)

    paper = paper_table1_sensordynamics()
    print("\n=== Table 1: SensorDynamics implementation ===")
    print("paper (published):")
    print(paper.format_table())
    print("\nmeasured (this reproduction):")
    print(measured.to_datasheet().format_table())

    # sensitivity calibrated to 5 mV/deg/s within the paper's initial band
    assert 4.5 <= measured.sensitivity_mv_per_dps <= 5.5
    # over temperature the sensitivity stays within a widened band
    lo, hi = measured.sensitivity_over_temp_mv
    assert 4.3 <= lo <= hi <= 5.7
    # nonlinearity at or below the paper's maximum (0.20 % FS)
    assert measured.nonlinearity_pct_fs <= 0.20
    # null near the ratiometric mid-supply
    assert measured.null_v == pytest.approx(2.5, abs=0.1)
    null_lo, null_hi = measured.null_over_temp_v
    assert 2.3 <= null_lo <= null_hi <= 2.8
    # turn-on time in the hundreds of milliseconds (paper max 500 ms)
    assert 200.0 <= measured.turn_on_time_ms <= 700.0
    # rate-noise density inside the paper's min/max band
    assert 0.03 <= measured.noise_density_dps_rthz <= 0.15
    # bandwidth inside the paper's 25-75 Hz window
    assert 25.0 <= measured.bandwidth_hz <= 75.0
