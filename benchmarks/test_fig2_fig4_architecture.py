"""Figures 2 and 4 — platform architecture and CPU-core architecture.

Regenerates the architecture inventory of the generic platform (Fig. 2)
customised for the gyro, and of the 8051 subsystem with its two buses
and peripherals (Fig. 4), and checks that all the blocks named in the
paper are present.
"""

import pytest

from repro.gyro import GyroConditioner, GyroConditionerConfig
from repro.mcu import McuSubsystem
from repro.platform import Domain, GenericSensorPlatform
from repro.afe import build_trim_bank


def _build_architecture():
    platform_def = GenericSensorPlatform()
    instance = platform_def.derive("gyro")
    mcu = McuSubsystem()
    conditioner = GyroConditioner(GyroConditionerConfig(status_update_interval=1))
    trim = build_trim_bank()
    mcu.connect_dsp_registers(conditioner.registers)
    mcu.connect_trim_bank(trim)
    return platform_def, instance, mcu


def test_fig2_fig4_architecture_inventory(benchmark):
    platform_def, instance, mcu = benchmark.pedantic(_build_architecture,
                                                     rounds=1, iterations=1)

    print("\n=== Figure 2: generic platform customised for the gyro ===")
    print(platform_def.architecture_report(instance))

    names = set(instance.block_names())
    # Fig. 2 blocks: converters, DSP IPs, CPU, memories, UART/SPI, timer, JTAG
    for block in ("sar_adc_12b", "dac_12b", "nco", "mixer_demodulator",
                  "pll_loop_filter", "agc", "cpu_8051", "memory_subsystem",
                  "uart", "spi", "timer_watchdog", "jtag_tap"):
        assert block in names, f"missing Fig. 2 block {block}"

    # Fig. 4: two-bus CPU subsystem with bridge-mapped peripherals and JTAG
    print("\n=== Figure 4: CPU core architecture ===")
    print(f"code memory            : {mcu.core.code.size} bytes")
    print(f"internal RAM           : {mcu.core.iram.SIZE} bytes")
    print(f"bridge base address    : 0x{mcu.bridge.base_address:04X}")
    print(f"JTAG IDCODE            : 0x{mcu.jtag.read_idcode():08X}")
    assert mcu.core.code.size == 16 * 1024          # 16 KB ROM ('ASIC' version)
    assert mcu.bridge.base_address == 0x8000
    # the DSP status registers and the analog trim bank are both reachable
    assert mcu.xdata.read(0x8100) is not None
    assert mcu.xdata.read(0x8000 + 0x04) == 12      # afe_adc_bits reset value

    # the platform-reuse claim: a capacitive instance leaves gyro IPs out
    pressure = platform_def.derive("capacitive")
    assert pressure.digital_gates < instance.digital_gates
    unused = {b.name for b in platform_def.unused_blocks(pressure)}
    assert "pll_loop_filter" in unused
