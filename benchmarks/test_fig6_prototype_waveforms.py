"""Figure 6 — measured PLL waveforms on the FPGA prototype.

The paper's Fig. 6 shows the same drive-loop signals measured on the
FPGA + discrete-AFE prototype.  The reproduction runs the *fixed-point*
(prototype / RTL-equivalent) configuration of the conditioning chain —
16-bit quantised DSP datapath — and checks that the prototype reaches
the same operating point as the behavioural model of Fig. 5, with only
small quantisation-induced differences (this is exactly the
behavioural-vs-implementation verification step of the design flow).
"""

import numpy as np
import pytest

from repro.platform import GyroPlatform, GyroPlatformConfig
from repro.sensors import Environment


def _run_prototype(duration_s=0.8):
    behavioural = GyroPlatform()
    behavioural_result = behavioural.run(Environment.still(), duration_s, reset=True)

    prototype_config = GyroPlatformConfig()
    prototype_config.conditioner.fixed_point = True
    prototype = GyroPlatform(prototype_config)
    prototype_result = prototype.run(Environment.still(), duration_s, reset=True)
    return behavioural, behavioural_result, prototype, prototype_result


def test_fig6_prototype_measured_waveforms(benchmark):
    behavioural, ref, prototype, proto = benchmark.pedantic(
        _run_prototype, rounds=1, iterations=1)

    print("\n=== Figure 6: measured waveforms (fixed-point prototype) ===")
    print(f"prototype PLL lock time    : {proto.lock_time_s() * 1000:.1f} ms")
    print(f"prototype amplitude        : "
          f"{prototype.conditioner.drive_loop.pll.amplitude_estimate:.3f}")
    print(f"prototype NCO frequency    : "
          f"{prototype.conditioner.drive_loop.pll.frequency_hz:.1f} Hz")
    print(f"behavioural NCO frequency  : "
          f"{behavioural.conditioner.drive_loop.pll.frequency_hz:.1f} Hz")

    # the prototype locks like the behavioural model did
    assert proto.pll_locked[-1]
    assert ref.pll_locked[-1]
    # and reaches the same operating point (same resonance, same amplitude)
    assert prototype.conditioner.drive_loop.pll.frequency_hz == pytest.approx(
        behavioural.conditioner.drive_loop.pll.frequency_hz, abs=10.0)
    assert prototype.conditioner.drive_loop.pll.amplitude_estimate == pytest.approx(
        behavioural.conditioner.drive_loop.pll.amplitude_estimate, rel=0.1)
    # quantisation leaves only a small residual difference in the drive gain
    tail_ref = np.mean(ref.amplitude_control[ref.settled_slice(0.2)])
    tail_proto = np.mean(proto.amplitude_control[proto.settled_slice(0.2)])
    assert tail_proto == pytest.approx(tail_ref, rel=0.1)
