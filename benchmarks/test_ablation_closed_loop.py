"""Ablation — open-loop vs closed-loop (force-rebalance) sense operation.

Section 4.1: "A closed loop configuration exploits the control
electrodes, by means of which the secondary vibration can be
compensated, in order to let the sensor work around its rest point, thus
achieving more linear and accurate measures."  The bench runs both
configurations and compares the residual secondary motion: the closed
loop must suppress the secondary vibration the open loop leaves
uncompensated (the mechanism behind the linearity claim).
"""

import numpy as np
import pytest

from repro.platform import GyroPlatform, GyroPlatformConfig
from repro.sensors import Environment


def _residual_motion(closed_loop: bool, rate_dps: float = 250.0) -> float:
    config = GyroPlatformConfig()
    config.conditioner.closed_loop = closed_loop
    platform = GyroPlatform(config)
    platform.start()
    platform.run(Environment.constant_rate(rate_dps), 0.3)
    # envelope amplitude of the secondary modal motion at the end of the run
    mode = platform.sensor.secondary
    omega = 2.0 * np.pi * mode.resonance_hz
    return float(np.sqrt(mode.displacement ** 2 + (mode.velocity / omega) ** 2))


def _run_ablation():
    open_loop = _residual_motion(closed_loop=False)
    closed_loop = _residual_motion(closed_loop=True)
    return open_loop, closed_loop


def test_ablation_closed_loop_suppresses_secondary_motion(benchmark):
    open_loop, closed_loop = benchmark.pedantic(_run_ablation, rounds=1,
                                                iterations=1)
    suppression = open_loop / max(closed_loop, 1e-15)
    print("\n=== Ablation: open loop vs force rebalance ===")
    print(f"open-loop secondary displacement   : {open_loop:.3e} m")
    print(f"closed-loop secondary displacement : {closed_loop:.3e} m")
    print(f"suppression factor                 : {suppression:.1f}x")

    # the rebalance loop works the sensor around its rest point
    assert closed_loop < open_loop
    assert suppression > 2.0
