"""Figure 5 — PLL locking waveforms of the behavioural (MATLAB-level) model.

The paper's Fig. 5 shows four traces during drive-loop lock-in:
amplitude control, phase error, amplitude error and VCO control.  The
bench runs the behavioural (floating-point) platform from power-on,
regenerates the four traces and checks the expected shape: the PLL
locks, the amplitude settles on the AGC target, and both error traces
collapse towards zero.
"""

import numpy as np
import pytest

from repro.platform import GyroPlatform
from repro.sensors import Environment


def _run_locking(duration_s=0.8):
    platform = GyroPlatform()
    result = platform.run(Environment.still(), duration_s, reset=True)
    return platform, result


def test_fig5_pll_locking_waveforms(benchmark):
    platform, result = benchmark.pedantic(_run_locking, rounds=1, iterations=1)

    tail = result.settled_slice(0.2)
    print("\n=== Figure 5: PLL locking (behavioural model) ===")
    print(f"trace length              : {result.time_s.size} samples "
          f"({result.duration_s * 1000:.0f} ms)")
    print(f"PLL lock time              : {result.lock_time_s() * 1000:.1f} ms")
    print(f"final amplitude control    : {result.amplitude_control[-1]:.3f}")
    print(f"final amplitude error      : {result.amplitude_error[-1]:+.4f}")
    print(f"final phase error          : {result.phase_error[-1]:+.4f}")
    print(f"final VCO control          : {result.vco_control[-1]:+.2f} Hz")
    print(f"NCO frequency              : "
          f"{platform.conditioner.drive_loop.pll.frequency_hz:.1f} Hz")

    # shape checks: locked, amplitude on target, errors collapsed
    assert result.pll_locked[-1]
    assert result.lock_time_s() < 0.3
    target = platform.conditioner.config.drive.agc.target_amplitude
    amplitude = platform.conditioner.drive_loop.pll.amplitude_estimate
    assert amplitude == pytest.approx(target, rel=0.1)
    assert abs(np.mean(result.amplitude_error[tail])) < 0.05
    assert abs(np.mean(result.phase_error[tail])) < 0.05
    # the amplitude-control (drive gain) trace settles to a steady value
    assert np.std(result.amplitude_control[tail]) < 0.02
    # the VCO control trace stays within the tuning range and settles
    assert np.all(np.abs(result.vco_control) <= 750.0)
