"""Shared fixtures for the benchmark harness.

The mixed-signal co-simulation is expensive, so the calibrated platform
(start-up + rate-table calibration) is built once per benchmark session
and reused by the table/figure benches.
"""

import pytest

from repro.platform import GenericSensorPlatform, GyroPlatform


@pytest.fixture(scope="session")
def calibrated_platform():
    """A started and factory-calibrated gyro platform."""
    platform = GyroPlatform()
    platform.calibrate(settle_s=0.2)
    return platform


@pytest.fixture(scope="session")
def gyro_instance():
    """The gyro customisation of the generic platform (IP selection)."""
    return GenericSensorPlatform().derive("gyro")
