"""Section 4.3 implementation figures — 200 kgates @ 20 MHz, 12 mm² AFE.

The paper reports that the digital section of the gyro customisation is
"roughly 200 Kgates" implemented in a Xilinx X2S600E at 20 MHz, and that
the analog front end occupies a 12 mm² chip in 0.35 µm CMOS.  The bench
rolls the IP portfolio up through the estimators and checks the numbers
land at that scale.
"""

import pytest

from repro.flow import estimate_asic, estimate_fpga_prototype


def _estimate(instance):
    fpga = estimate_fpga_prototype(instance, clock_mhz=20.0)
    asic = estimate_asic(instance)
    return fpga, asic


def test_sec43_implementation_estimates(benchmark, gyro_instance):
    fpga, asic = benchmark.pedantic(_estimate, args=(gyro_instance,),
                                    rounds=1, iterations=1)

    print("\n=== Section 4.3: implementation estimates ===")
    print("FPGA prototype :", fpga.summary())
    print("ASIC estimate  :", asic.summary())

    # "roughly 200 Kgates" of digital logic
    assert 150_000 <= fpga.design_gates <= 250_000
    # it fits the X2S600E at 20 MHz
    assert fpga.fits and fpga.timing_met
    assert fpga.clock_mhz == pytest.approx(20.0)
    # the analog front end is on the order of the paper's 12 mm2 chip
    assert 5.0 <= asic.analog_area_mm2 <= 15.0
    # the single-chip integration stays a plausible automotive die size
    assert asic.total_die_mm2 < 40.0
