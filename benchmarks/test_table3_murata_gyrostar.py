"""Table 3 — Murata Gyrostar baseline.

Characterises the Gyrostar behavioural model (parameterised from the
paper's Table 3) with the same metric harness used for the platform.
"""

import pytest

from repro.eval import (
    BaselineGyroDevice,
    characterize_baseline,
    murata_gyrostar_spec,
    paper_table3_murata_gyrostar,
)


def _characterize():
    device = BaselineGyroDevice(murata_gyrostar_spec(), seed=13)
    return characterize_baseline(device, noise_duration_s=4.0, settle_s=0.5)


def test_table3_murata_gyrostar_baseline(benchmark):
    measured = benchmark.pedantic(_characterize, rounds=1, iterations=1)

    paper = paper_table3_murata_gyrostar()
    print("\n=== Table 3: Murata Gyrostar ===")
    print("paper (published):")
    print(paper.format_table())
    print("\nmeasured (behavioural model):")
    print(measured.to_datasheet().format_table())

    # Gyrostar sensitivity is an order of magnitude below the 5 mV/deg/s parts
    assert measured.sensitivity_mv_per_dps == pytest.approx(0.67, rel=0.15)
    assert measured.null_v == pytest.approx(1.35, abs=0.1)
    assert measured.bandwidth_hz <= 50.0
    assert measured.operating_temp_c == (-5.0, 75.0)
