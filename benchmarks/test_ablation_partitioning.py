"""Ablation — the digital-heavy partitioning choice and the DSE sweep.

The paper's central design argument is to keep the analog section
minimal and do "as much conditioning as possible" in the digital domain.
This bench (a) runs the partitioning engine with the default automotive
cost weights and confirms the signal-processing functions land in
hardwired digital logic, (b) flips the weights to emulate an
analog-friendly technology and shows the partition moves, and (c) runs
the design-space exploration and reports the Pareto front the platform
point sits on.
"""

import pytest

from repro.flow import (
    DseConfig,
    PartitioningWeights,
    explore,
    gyro_system_functions,
    pareto_front,
    partition,
    recommend,
)
from repro.platform import Domain


def _run_ablation():
    baseline = partition(gyro_system_functions())
    analog_friendly = partition(
        gyro_system_functions(),
        PartitioningWeights(area_mm2=0.05, gates=0.01, power_mw=0.2))
    evaluated = explore()
    front = pareto_front(evaluated)
    chosen = recommend()
    return baseline, analog_friendly, front, chosen


def test_ablation_partitioning_and_dse(benchmark):
    baseline, analog_friendly, front, chosen = benchmark.pedantic(
        _run_ablation, rounds=1, iterations=1)

    print("\n=== Ablation: analog/digital/software partitioning ===")
    print("default weights  -> digital:",
          baseline.functions_in_domain(Domain.DIGITAL_HW))
    print("                 -> software:",
          baseline.functions_in_domain(Domain.SOFTWARE))
    print("analog-friendly  -> analog:",
          analog_friendly.functions_in_domain(Domain.ANALOG))
    print("\nDSE Pareto front (noise vs gates):")
    for point in front[:8]:
        print("  ", point.summary())
    print("recommended point:", chosen.summary())

    # with automotive cost weights, the conditioning is digital-heavy ...
    digital = set(baseline.functions_in_domain(Domain.DIGITAL_HW))
    assert {"drive_pll", "drive_agc", "rate_demodulation",
            "output_filtering"} <= digital
    # ... and the flexible services are software
    assert "communication_services" in baseline.functions_in_domain(Domain.SOFTWARE)
    # when analog area/power is made artificially cheap, the partition shifts
    assert len(analog_friendly.functions_in_domain(Domain.ANALOG)) > \
        len(baseline.functions_in_domain(Domain.ANALOG))
    # the DSE recommendation meets the Table 1 noise band
    assert chosen.noise_density_dps_rthz <= 0.13
    assert len(front) >= 2
