"""Figure 1 — the platform-based design flow, executed end to end.

Runs the Fig. 1 stage graph for the gyro project with real actions wired
in: the partitioning stage runs the partitioning engine, the mixed
simulation stage runs a short behavioural-vs-fixed-point equivalence
check, and the prototyping / ASIC stages run the implementation
estimators.  The bench asserts every stage passes.
"""

import pytest

from repro.flow import (
    build_gyro_design_flow,
    compare_traces,
    estimate_asic,
    estimate_fpga_prototype,
    gyro_system_functions,
    partition,
)
from repro.platform import GenericSensorPlatform, GyroPlatform, GyroPlatformConfig
from repro.sensors import Environment


def _run_flow():
    platform_def = GenericSensorPlatform()
    instance = platform_def.derive("gyro")

    def do_partitioning(ctx):
        result = partition(gyro_system_functions())
        ctx["partition"] = result
        return {"digital_gates": result.digital_gates,
                "analog_area_mm2": round(result.analog_area_mm2, 2),
                "code_bytes": result.code_bytes}

    def do_mixed_simulation(ctx):
        behavioural = GyroPlatform()
        ref = behavioural.run(Environment.still(), 0.25, reset=True)
        proto_cfg = GyroPlatformConfig()
        proto_cfg.conditioner.fixed_point = True
        prototype = GyroPlatform(proto_cfg)
        impl = prototype.run(Environment.still(), 0.25, reset=True)
        report = compare_traces(ref.amplitude_control, impl.amplitude_control,
                                tolerance=0.1, skip_fraction=0.3)
        ctx["equivalence"] = report
        if not report.passed:
            raise RuntimeError("behavioural vs fixed-point mismatch")
        return {"max_abs_error": report.max_abs_error}

    def do_prototyping(ctx):
        report = estimate_fpga_prototype(instance, clock_mhz=20.0)
        if not (report.fits and report.timing_met):
            raise RuntimeError("prototype does not fit the X2S600E")
        return {"fpga_gates": report.design_gates,
                "utilization": round(report.utilization, 3)}

    def do_asic(ctx):
        report = estimate_asic(instance)
        return {"die_mm2": round(report.total_die_mm2, 1),
                "analog_mm2": round(report.analog_area_mm2, 1)}

    flow = build_gyro_design_flow({
        "partitioning": do_partitioning,
        "mixed_simulation": do_mixed_simulation,
        "prototyping": do_prototyping,
        "asic_integration": do_asic,
    })
    flow.execute()
    return flow


def test_fig1_design_flow_end_to_end(benchmark):
    flow = benchmark.pedantic(_run_flow, rounds=1, iterations=1)
    print("\n=== Figure 1: platform-based design flow ===")
    print(flow.report())
    assert flow.succeeded
    assert flow.results["partitioning"].details["digital_gates"] > 0
    assert flow.results["prototyping"].details["utilization"] < 1.0
