"""Engine performance report: reference vs. fused/compiled vs. batched.

Times the co-simulation paths on the same fixed workload — the Fig. 5
drive-loop locking scenario (sensor at rest from power-on) — plus the
scenario-campaign orchestrator on a rate-table sweep, both in-process
and through the sharded multi-process executor, and writes
``BENCH_engine.json`` at the repository root so the perf trajectory can
be tracked across PRs.

Schema: a list of ``{path, samples_per_sec, speedup_vs_reference}``
records under ``"entries"``.  ``samples_per_sec`` is simulated
samples per wall-clock second; for the batched and campaign paths all
fleet lanes count, so their speedup is the *per-scenario* throughput
gain at ``B`` lanes.  ``compiled_backend`` records whether the compiled
rows ran the numba JIT or the generated-Python fallback; the compiled
engine's kernel generation/JIT warm-up is excluded from its timings (a
throwaway run compiles and caches the kernel before the clock starts).

Run with:  PYTHONPATH=src python benchmarks/perf_report.py [--quick]
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.engine import FleetSimulator, backend_info      # noqa: E402
from repro.engine import run_compiled_fleet                # noqa: E402
from repro.platform import GyroPlatform, GyroPlatformConfig  # noqa: E402
from repro.scenarios import Campaign, rate_table_scenarios  # noqa: E402
from repro.sensors import Environment                      # noqa: E402

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
REPORT_PATH = os.path.join(REPO_ROOT, "BENCH_engine.json")

DURATION_S = 0.5   # the fixed locking scenario
BATCH_LANES = 32


REPEATS = 2  # best-of-N to damp scheduler noise


def _time_engine(engine: str, duration_s: float) -> float:
    if engine == "compiled":
        # compile and cache the kernel outside the timed region: the
        # report tracks steady-state throughput, not one-off JIT cost
        GyroPlatform(GyroPlatformConfig()).run(Environment.still(), 0.01,
                                               engine="compiled")
    best = float("inf")
    for _ in range(REPEATS):
        platform = GyroPlatform(GyroPlatformConfig())
        start = time.perf_counter()
        platform.run(Environment.still(), duration_s, reset=True,
                     engine=engine)
        best = min(best, time.perf_counter() - start)
    return best


def _time_compiled_fleet(lanes: int, duration_s: float) -> float:
    """Time ``run_compiled_fleet`` over ``lanes`` homogeneous lanes
    (kernel already warm from the scalar compiled row)."""
    best = float("inf")
    for _ in range(REPEATS):
        fleet = [GyroPlatform(GyroPlatformConfig()) for _ in range(lanes)]
        start = time.perf_counter()
        run_compiled_fleet(fleet, Environment.still(), duration_s)
        best = min(best, time.perf_counter() - start)
    return best


def _time_batch(lanes: int, duration_s: float) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        fleet = FleetSimulator.from_config(GyroPlatformConfig(), lanes)
        start = time.perf_counter()
        fleet.run(Environment.still(), duration_s, reset=True)
        best = min(best, time.perf_counter() - start)
    return best


def _time_campaign(lanes: int, duration_s: float) -> float:
    """Time a rate-table campaign: B settled-output scenarios, one fleet.

    The platform start-up is not timed — the campaign layer is what is
    being measured: scenario branching, fleet packing and metric
    extraction on top of the batched engine.
    """
    rates = [(-200.0 + 400.0 * i / max(lanes - 1, 1)) for i in range(lanes)]
    best = float("inf")
    for _ in range(REPEATS):
        platform = GyroPlatform(GyroPlatformConfig())
        platform.start()
        campaign = Campaign(rate_table_scenarios(rates, settle_s=duration_s),
                            name="bench-rate-table")
        start = time.perf_counter()
        campaign.run(platform, engine="batched")
        best = min(best, time.perf_counter() - start)
    return best


def _time_sharded(lanes: int, duration_s: float, workers: int) -> float:
    """Time the same rate-table campaign through the sharded executor.

    Includes everything sharding adds on top of the campaign row:
    pickling lane programs and the base platform to the workers, worker
    start-up, manifest bookkeeping and result-file round-trips.  Each
    repeat gets a fresh manifest directory so nothing is resumed.
    """
    import shutil
    import tempfile

    rates = [(-200.0 + 400.0 * i / max(lanes - 1, 1)) for i in range(lanes)]
    best = float("inf")
    for _ in range(REPEATS):
        platform = GyroPlatform(GyroPlatformConfig())
        platform.start()
        campaign = Campaign(rate_table_scenarios(rates, settle_s=duration_s),
                            name="bench-rate-table")
        manifest_dir = tempfile.mkdtemp(prefix="bench-sharded-")
        try:
            start = time.perf_counter()
            campaign.run(platform, engine="batched", executor="sharded",
                         workers=workers, manifest_dir=manifest_dir)
            best = min(best, time.perf_counter() - start)
        finally:
            shutil.rmtree(manifest_dir, ignore_errors=True)
    return best


def build_report(duration_s: float = DURATION_S,
                 lanes: int = BATCH_LANES,
                 workers: int = None) -> dict:
    """Time the engines and the campaign layer; return the report dict."""
    fs = GyroPlatformConfig().sample_rate_hz
    n = int(round(duration_s * fs))
    workers = workers or min(2, os.cpu_count() or 1)

    t_ref = _time_engine("reference", duration_s)
    t_fused = _time_engine("fused", duration_s)
    t_compiled = _time_engine("compiled", duration_s)
    t_batch = _time_batch(lanes, duration_s)
    t_compiled_fleet = _time_compiled_fleet(lanes, duration_s)
    t_campaign = _time_campaign(lanes, duration_s)
    t_sharded = _time_sharded(lanes, duration_s, workers)

    sps_ref = n / t_ref
    entries = []
    for path, sps in (("reference", sps_ref),
                      ("fused", n / t_fused),
                      ("compiled", n / t_compiled),
                      (f"batched[B={lanes}]", n * lanes / t_batch),
                      (f"compiled-batched[B={lanes}]",
                       n * lanes / t_compiled_fleet),
                      (f"campaign[rate-table B={lanes}]",
                       n * lanes / t_campaign),
                      (f"sharded[{workers} workers, rate-table B={lanes}]",
                       n * lanes / t_sharded)):
        entries.append({
            "path": path,
            "samples_per_sec": round(sps, 1),
            "speedup_vs_reference": round(sps / sps_ref, 2),
        })
    return {
        "scenario": ("fig5 locking run: sensor at rest from power-on, "
                     f"{duration_s} s @ {fs:.0f} Hz; campaign/sharded "
                     f"entries: {lanes}-point rate-table sweep of the same "
                     "length"),
        "samples": n,
        "batch_lanes": lanes,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "compiled_backend": backend_info(),
        "entries": entries,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="shorter run (0.1 s, 8 lanes) for smoke tests; "
                             "printed only, not written to the tracked report")
    parser.add_argument("--output", default=None,
                        help=f"report path (default {REPORT_PATH}; quick "
                             "runs are not written unless a path is given)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for the sharded entry "
                             "(default: min(2, cpu count))")
    args = parser.parse_args()

    duration = 0.1 if args.quick else DURATION_S
    lanes = 8 if args.quick else BATCH_LANES
    report = build_report(duration, lanes, args.workers)
    # a --quick run measures a different scenario: never let it silently
    # overwrite the tracked perf-trajectory file
    output = args.output or (None if args.quick else REPORT_PATH)
    if output is not None:
        with open(output, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {output}")
    else:
        print("quick run (not written; pass --output to save)")
    for entry in report["entries"]:
        print(f"  {entry['path']:<40s} {entry['samples_per_sec']:>12,.0f} "
              f"samples/s   {entry['speedup_vs_reference']:>6.2f}x")


if __name__ == "__main__":
    main()
