"""Setup shim for environments without PEP 517 build isolation."""

from setuptools import find_packages, setup

setup(
    name="repro-gyro-cosim",
    package_dir={"": "src"},
    packages=find_packages("src"),
    install_requires=["numpy", "scipy"],
    extras_require={
        # the compiled engine JITs its generated kernels with numba when
        # available and falls back to plain exec-compiled Python when
        # not; install with `pip install -e .[jit]` for the fast path
        "jit": ["numba"],
    },
)
